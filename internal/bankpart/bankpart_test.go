package bankpart

import (
	"testing"

	"dbpsim/internal/addr"
)

func TestSpreadOrderAlternatesChannels(t *testing.T) {
	g := addr.DefaultGeometry() // 2 channels × 1 rank × 8 banks
	order := SpreadOrder(g)
	if len(order) != 16 {
		t.Fatalf("len = %d", len(order))
	}
	seen := map[int]bool{}
	for i, c := range order {
		if seen[c] {
			t.Fatalf("color %d repeated", c)
		}
		seen[c] = true
		ch, _, _ := g.ColorParts(c)
		if ch != i%2 {
			t.Errorf("position %d on channel %d, want alternation", i, ch)
		}
	}
}

func TestNoneGivesEveryoneEverything(t *testing.T) {
	p := NewNone(4, addr.DefaultGeometry())
	if p.Name() != "none" {
		t.Errorf("Name = %q", p.Name())
	}
	masks := p.Initial()
	if len(masks) != 4 {
		t.Fatalf("mask count = %d", len(masks))
	}
	for tid, m := range masks {
		if m.Count() != 16 {
			t.Errorf("thread %d has %d colors, want 16", tid, m.Count())
		}
	}
	if _, changed := p.Quantum(nil); changed {
		t.Error("None must never change")
	}
}

func TestEqualPartitionsDisjointAndComplete(t *testing.T) {
	g := addr.DefaultGeometry()
	p, err := NewEqual(4, g)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "equal" {
		t.Errorf("Name = %q", p.Name())
	}
	masks := p.Initial()
	owner := make([]int, 16)
	for i := range owner {
		owner[i] = -1
	}
	for tid, m := range masks {
		if m.Count() != 4 {
			t.Errorf("thread %d has %d colors, want 4", tid, m.Count())
		}
		for _, c := range m.Colors() {
			if owner[c] >= 0 {
				t.Fatalf("color %d doubly assigned", c)
			}
			owner[c] = tid
		}
	}
	for c, o := range owner {
		if o < 0 {
			t.Errorf("color %d unassigned", c)
		}
	}
	if _, changed := p.Quantum(nil); changed {
		t.Error("Equal must never change")
	}
}

func TestEqualSpansChannels(t *testing.T) {
	g := addr.DefaultGeometry()
	p, err := NewEqual(8, g)
	if err != nil {
		t.Fatal(err)
	}
	for tid, m := range p.Initial() {
		chans := map[int]bool{}
		for _, c := range m.Colors() {
			ch, _, _ := g.ColorParts(c)
			chans[ch] = true
		}
		if len(chans) != g.Channels {
			t.Errorf("thread %d confined to %d channel(s)", tid, len(chans))
		}
	}
}

func TestEqualUnevenDivision(t *testing.T) {
	g := addr.DefaultGeometry()
	p, err := NewEqual(3, g) // 16/3
	if err != nil {
		t.Fatal(err)
	}
	counts := []int{}
	total := 0
	for _, m := range p.Initial() {
		counts = append(counts, m.Count())
		total += m.Count()
	}
	if total != 16 {
		t.Errorf("total = %d, want 16 (%v)", total, counts)
	}
	for _, c := range counts {
		if c < 5 || c > 6 {
			t.Errorf("uneven split %v, want 5..6 each", counts)
		}
	}
}

func TestEqualErrors(t *testing.T) {
	g := addr.DefaultGeometry()
	if _, err := NewEqual(0, g); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := NewEqual(17, g); err == nil {
		t.Error("threads > colors accepted")
	}
}

func TestEqualInitialReturnsClones(t *testing.T) {
	p, err := NewEqual(2, addr.DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	a := p.Initial()
	a[0].Add(15)
	a[0].Add(14)
	b := p.Initial()
	if b[0].Count() != 8 {
		t.Error("Initial does not return independent clones")
	}
}

func TestFixedPolicy(t *testing.T) {
	g := addr.DefaultGeometry()
	p, err := NewFixed([][]int{{0, 1}, {5}}, g)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "fixed" {
		t.Errorf("Name = %q", p.Name())
	}
	masks := p.Initial()
	if masks[0].Count() != 2 || !masks[0].Has(0) || !masks[0].Has(1) {
		t.Errorf("thread 0 mask = %s", masks[0])
	}
	if masks[1].Count() != 1 || !masks[1].Has(5) {
		t.Errorf("thread 1 mask = %s", masks[1])
	}
	if _, changed := p.Quantum(nil); changed {
		t.Error("Fixed must never change")
	}
	// Initial returns clones.
	masks[0].Add(9)
	if p.Initial()[0].Has(9) {
		t.Error("Initial not cloned")
	}
}

func TestFixedPolicyErrors(t *testing.T) {
	g := addr.DefaultGeometry()
	if _, err := NewFixed(nil, g); err == nil {
		t.Error("empty threads accepted")
	}
	if _, err := NewFixed([][]int{{99}}, g); err == nil {
		t.Error("out-of-range color accepted")
	}
	if _, err := NewFixed([][]int{{-1}}, g); err == nil {
		t.Error("negative color accepted")
	}
	if _, err := NewFixed([][]int{{}}, g); err == nil {
		t.Error("empty mask accepted")
	}
}
