// Package bankpart defines the bank-partitioning policy interface and the
// static policies the paper compares against: no partitioning (full
// interleaving) and equal bank partitioning. Dynamic Bank Partitioning
// (internal/core) and Memory Channel Partitioning (internal/mcp) implement
// the same interface.
//
// The static policies here (None, Fixed, Equal) hold no mutable state after
// construction, so the checkpoint subsystem (internal/sim snapshots) has
// nothing to capture for them; only DBP and MCP carry snapshot state.
package bankpart

import (
	"fmt"

	"dbpsim/internal/addr"
	"dbpsim/internal/paging"
	"dbpsim/internal/profile"
)

// Policy computes per-thread page-color masks.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Initial returns the masks installed before execution starts,
	// one per thread.
	Initial() []paging.ColorSet
	// Quantum consumes the last quantum's thread profiles and returns new
	// masks; changed=false means "keep the current masks".
	Quantum(samples []profile.ThreadSample) (masks []paging.ColorSet, changed bool)
}

// SpreadOrder returns all colors ordered so that consecutive entries
// alternate channels (and ranks) before reusing a channel: slicing a
// contiguous run of this order gives a thread banks spread across channels,
// preserving its channel-level parallelism.
func SpreadOrder(g addr.Geometry) []int {
	out := make([]int, 0, g.NumColors())
	for b := 0; b < g.BanksPerRank; b++ {
		for r := 0; r < g.RanksPerChannel; r++ {
			for ch := 0; ch < g.Channels; ch++ {
				out = append(out, g.BankID(ch, r, b))
			}
		}
	}
	return out
}

// None gives every thread every bank: the conventional fully interleaved
// baseline, where all interference happens at the scheduler.
type None struct {
	numThreads int
	numColors  int
}

// NewNone builds the no-partitioning policy.
func NewNone(numThreads int, g addr.Geometry) *None {
	return &None{numThreads: numThreads, numColors: g.NumColors()}
}

// Name implements Policy.
func (*None) Name() string { return "none" }

// Initial implements Policy.
func (p *None) Initial() []paging.ColorSet {
	masks := make([]paging.ColorSet, p.numThreads)
	for i := range masks {
		masks[i] = paging.FullColorSet(p.numColors)
	}
	return masks
}

// Quantum implements Policy: never changes anything.
func (p *None) Quantum([]profile.ThreadSample) ([]paging.ColorSet, bool) {
	return nil, false
}

// Fixed installs caller-chosen static masks (used by motivation and
// sensitivity experiments that pin a thread to an explicit bank set).
type Fixed struct {
	masks []paging.ColorSet
}

// NewFixed builds a static policy from explicit per-thread color lists.
func NewFixed(colorsPerThread [][]int, g addr.Geometry) (*Fixed, error) {
	if len(colorsPerThread) == 0 {
		return nil, fmt.Errorf("bankpart: NewFixed needs at least one thread")
	}
	n := g.NumColors()
	masks := make([]paging.ColorSet, len(colorsPerThread))
	for t, colors := range colorsPerThread {
		m := paging.NewColorSet(n)
		for _, c := range colors {
			if c < 0 || c >= n {
				return nil, fmt.Errorf("bankpart: thread %d color %d out of range [0,%d)", t, c, n)
			}
			m.Add(c)
		}
		if m.Empty() {
			return nil, fmt.Errorf("bankpart: thread %d has no colors", t)
		}
		masks[t] = m
	}
	return &Fixed{masks: masks}, nil
}

// Name implements Policy.
func (*Fixed) Name() string { return "fixed" }

// Initial implements Policy.
func (p *Fixed) Initial() []paging.ColorSet {
	out := make([]paging.ColorSet, len(p.masks))
	for i, m := range p.masks {
		out[i] = m.Clone()
	}
	return out
}

// Quantum implements Policy: static, never changes.
func (p *Fixed) Quantum([]profile.ThreadSample) ([]paging.ColorSet, bool) {
	return nil, false
}

// Equal statically splits the banks evenly among threads — the prior
// bank-partitioning scheme DBP improves on. Each thread's share is drawn
// from SpreadOrder so it still spans the channels.
type Equal struct {
	masks []paging.ColorSet
}

// NewEqual builds the equal-partitioning policy. It returns an error when
// there are more threads than bank colors.
func NewEqual(numThreads int, g addr.Geometry) (*Equal, error) {
	n := g.NumColors()
	if numThreads <= 0 {
		return nil, fmt.Errorf("bankpart: numThreads must be positive, got %d", numThreads)
	}
	if numThreads > n {
		return nil, fmt.Errorf("bankpart: %d threads exceed %d bank colors", numThreads, n)
	}
	spread := SpreadOrder(g)
	masks := make([]paging.ColorSet, numThreads)
	for i := range masks {
		masks[i] = paging.NewColorSet(n)
	}
	// Contiguous slices of the spread order: each thread's share alternates
	// channels, so equal partitioning costs banks but not channel
	// parallelism. Remainder colors go one each to the first threads.
	k, rem := n/numThreads, n%numThreads
	pos := 0
	for i := range masks {
		take := k
		if i < rem {
			take++
		}
		for j := 0; j < take; j++ {
			masks[i].Add(spread[pos])
			pos++
		}
	}
	return &Equal{masks: masks}, nil
}

// Name implements Policy.
func (*Equal) Name() string { return "equal" }

// Initial implements Policy.
func (p *Equal) Initial() []paging.ColorSet {
	out := make([]paging.ColorSet, len(p.masks))
	for i, m := range p.masks {
		out[i] = m.Clone()
	}
	return out
}

// Quantum implements Policy: static, never changes.
func (p *Equal) Quantum([]profile.ThreadSample) ([]paging.ColorSet, bool) {
	return nil, false
}
