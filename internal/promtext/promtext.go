// Package promtext renders metrics in the Prometheus text exposition
// format. It exists because the repo is stdlib-only: both the single-node
// service (internal/serve) and the fleet layer (internal/fleet) hand-roll
// their instrumentation, and this package keeps the two exposition pages
// consistent — the same counter/gauge line shapes, the same fixed-bucket
// cumulative histogram — without a client_golang dependency.
//
// The surface is deliberately tiny: callers own their atomic counters and
// call the Write* helpers at scrape time; only Histogram carries state here
// (observations need a mutex anyway).
package promtext

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// WriteGauge writes one HELP/TYPE/value block for a gauge.
func WriteGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatValue(v))
}

// WriteCounter writes one HELP/TYPE/value block for a counter.
func WriteCounter(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %s\n", name, help, name, name, formatValue(v))
}

// WriteHeader writes the HELP/TYPE preamble only — for metrics that emit
// several labelled series under one name (the caller writes the series
// lines itself with WriteLabeled).
func WriteHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// WriteLabeled writes one labelled series line: name{label="value"} v.
// Label values are quoted with %q, so arbitrary worker ids are safe.
func WriteLabeled(w io.Writer, name, label, value string, v float64) {
	fmt.Fprintf(w, "%s{%s=%q} %s\n", name, label, value, formatValue(v))
}

// WriteLabeled2 writes one series line carrying two label pairs:
// name{l1="v1",l2="v2"} v — for families like queue depth keyed by both
// lane and tenant.
func WriteLabeled2(w io.Writer, name, l1, v1, l2, v2 string, v float64) {
	fmt.Fprintf(w, "%s{%s=%q,%s=%q} %s\n", name, l1, v1, l2, v2, formatValue(v))
}

// formatValue renders integral values without an exponent or trailing
// decimals (counters read naturally) and non-integral ones at full
// precision.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// each bucket counts observations ≤ its upper bound, plus an implicit
// +Inf). Safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	n      uint64
}

// NewHistogram builds a histogram with the given ascending bucket bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// Write renders the histogram's exposition block.
func (h *Histogram) Write(w io.Writer, name, help string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.n)
}

// WriteSeries renders the histogram's sample lines carrying one extra label
// pair and no HELP/TYPE preamble — callers exposing several labelled series
// of one histogram family (e.g. queue wait per lane) write the header once
// with WriteHeader and then one WriteSeries per label value.
func (h *Histogram) WriteSeries(w io.Writer, name, label, value string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", name, label, value, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, value, cum)
	fmt.Fprintf(w, "%s_sum{%s=%q} %g\n", name, label, value, h.sum)
	fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, label, value, h.n)
}
