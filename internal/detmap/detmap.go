// Package detmap provides a map type with deterministic gob encoding.
//
// encoding/gob serialises plain Go maps in iteration order, which Go
// randomises per process: two snapshots of semantically identical state
// produce different bytes. Snapshot blobs must be byte-reproducible — the
// cycle-skipping bit-identity suite compares them directly, and
// content-addressed caches key on them — so every map-shaped field in a
// snapshot state struct uses detmap.Map instead, which encodes entries in
// ascending key order.
package detmap

import (
	"bytes"
	"cmp"
	"encoding/gob"
	"slices"
)

// Map is a map whose gob encoding is deterministic: entries are written in
// ascending key order. It is an ordinary map otherwise — index, range,
// delete and len all work directly.
type Map[K cmp.Ordered, V any] map[K]V

// Copy returns a Map holding the entries of src (nil in, nil out).
func Copy[K cmp.Ordered, V any](src map[K]V) Map[K, V] {
	if src == nil {
		return nil
	}
	dst := make(Map[K, V], len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// GobEncode implements gob.GobEncoder with sorted-key order.
func (m Map[K, V]) GobEncode() ([]byte, error) {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(len(keys)); err != nil {
		return nil, err
	}
	for _, k := range keys {
		if err := enc.Encode(k); err != nil {
			return nil, err
		}
		v := m[k]
		if err := enc.Encode(&v); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (m *Map[K, V]) GobDecode(data []byte) error {
	dec := gob.NewDecoder(bytes.NewReader(data))
	var n int
	if err := dec.Decode(&n); err != nil {
		return err
	}
	out := make(Map[K, V], n)
	for i := 0; i < n; i++ {
		var k K
		var v V
		if err := dec.Decode(&k); err != nil {
			return err
		}
		if err := dec.Decode(&v); err != nil {
			return err
		}
		out[k] = v
	}
	*m = out
	return nil
}
