package detmap

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

func encode(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDeterministicAcrossInsertionOrders(t *testing.T) {
	// Build the same logical map many times with different insertion orders;
	// every encoding must be byte-identical. (Plain maps fail this almost
	// immediately under Go's randomised iteration.)
	var want []byte
	for trial := 0; trial < 20; trial++ {
		m := make(Map[uint64, int], 64)
		if trial%2 == 0 {
			for i := 0; i < 64; i++ {
				m[uint64(i*37%64)] = i
			}
		} else {
			for i := 63; i >= 0; i-- {
				m[uint64(i*37%64)] = 64 - (64 - i)
			}
		}
		// Normalise values so all trials hold the same entries.
		for k := range m {
			m[k] = int(k) * 3
		}
		got := encode(t, m)
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("trial %d produced different bytes", trial)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	in := Map[int, []uint64]{3: {1, 2}, -5: nil, 0: {9}}
	raw := encode(t, in)
	var out Map[int, []uint64]
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch: in=%v out=%v", in, out)
	}
}

func TestEmptyAndNil(t *testing.T) {
	var empty Map[int, int]
	raw := encode(t, &empty)
	var out Map[int, int]
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("want empty, got %v", out)
	}
	if Copy[int, int](nil) != nil {
		t.Fatal("Copy(nil) must be nil")
	}
}

func TestCopyIsIndependent(t *testing.T) {
	src := map[int]int{1: 10, 2: 20}
	dst := Copy(src)
	dst[1] = 99
	if src[1] != 10 {
		t.Fatal("Copy aliased the source map")
	}
}
