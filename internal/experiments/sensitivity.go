package experiments

import (
	"fmt"

	"dbpsim/internal/core"
	"dbpsim/internal/sim"
	"dbpsim/internal/stats"
	"dbpsim/internal/trace"
	"dbpsim/internal/workload"
)

// mixesOfCategory filters the option's mix list to one category (falling
// back to the whole list when empty).
func mixesOfCategory(o Options, cat string) []workload.Mix {
	var out []workload.Mix
	for _, m := range o.Mixes {
		if m.Category == cat {
			out = append(out, m)
		}
	}
	if len(out) == 0 {
		return o.Mixes
	}
	return out
}

// SensBanks reproduces the bank-count sensitivity (the paper's Fig. 10):
// EqualBP vs DBP as the number of banks per rank varies.
func SensBanks(o Options) (Outcome, error) {
	t := stats.NewTable("banks", "EqualBP.WS", "EqualBP.MS", "DBP.WS", "DBP.MS")
	mixes := mixesOfCategory(o, "M")
	var gaps []string
	for _, banks := range []int{4, 8, 16} {
		opts := o
		opts.Base.Geometry.BanksPerRank = banks
		opts.Mixes = mixes
		_, means, err := policySweep(opts, []sim.PolicyPoint{
			{Label: "EqualBP", Scheduler: sim.SchedFRFCFS, Partition: sim.PartEqual},
			{Label: "DBP", Scheduler: sim.SchedFRFCFS, Partition: sim.PartDBP},
		})
		if err != nil {
			return Outcome{}, fmt.Errorf("banks=%d: %w", banks, err)
		}
		totalBanks := banks * opts.Base.Geometry.Channels * opts.Base.Geometry.RanksPerChannel
		t.AddRow(fmt.Sprintf("%d", totalBanks),
			fmt.Sprintf("%.3f", means[0].WeightedSpeedup), fmt.Sprintf("%.3f", means[0].MaxSlowdown),
			fmt.Sprintf("%.3f", means[1].WeightedSpeedup), fmt.Sprintf("%.3f", means[1].MaxSlowdown))
		ws, fair := means[1].Delta(means[0])
		gaps = append(gaps, fmt.Sprintf("%d banks: DBP %+.1f%% WS / %+.1f%% fairness", totalBanks, ws, fair))
		o.log("sens-banks: %d banks done", totalBanks)
	}
	return Outcome{
		ID:    "fig10",
		Title: "Sensitivity: total bank count (EqualBP vs DBP)",
		Table: t,
		Summary: append([]string{
			"DBP's edge peaks at moderate bank counts: with banks ≈ threads there is nothing to reallocate; with plentiful banks equal shares already satisfy demand.",
		}, gaps...),
	}, nil
}

// SensCores reproduces the core-count sensitivity (the paper's Fig. 11).
func SensCores(o Options) (Outcome, error) {
	t := stats.NewTable("cores", "EqualBP.WS", "EqualBP.MS", "DBP.WS", "DBP.MS")
	sets := []struct {
		cores int
		mixes []workload.Mix
	}{
		{4, workload.Mixes4()},
		{8, mixesOfCategory(o, "M")},
		{16, workload.Mixes16()},
	}
	for _, set := range sets {
		opts := o
		opts.Mixes = set.mixes
		_, means, err := policySweep(opts, []sim.PolicyPoint{
			{Label: "EqualBP", Scheduler: sim.SchedFRFCFS, Partition: sim.PartEqual},
			{Label: "DBP", Scheduler: sim.SchedFRFCFS, Partition: sim.PartDBP},
		})
		if err != nil {
			return Outcome{}, fmt.Errorf("cores=%d: %w", set.cores, err)
		}
		t.AddRow(fmt.Sprintf("%d", set.cores),
			fmt.Sprintf("%.3f", means[0].WeightedSpeedup), fmt.Sprintf("%.3f", means[0].MaxSlowdown),
			fmt.Sprintf("%.3f", means[1].WeightedSpeedup), fmt.Sprintf("%.3f", means[1].MaxSlowdown))
		o.log("sens-cores: %d cores done", set.cores)
	}
	return Outcome{
		ID:    "fig11",
		Title: "Sensitivity: core count (EqualBP vs DBP)",
		Table: t,
	}, nil
}

// SensQuantum reproduces the quantum-length sensitivity (the paper's
// Fig. 12).
func SensQuantum(o Options) (Outcome, error) {
	t := stats.NewTable("quantum.cycles", "DBP.WS", "DBP.MS")
	mixes := mixesOfCategory(o, "M")
	for _, q := range []uint64{250_000, 500_000, 1_000_000, 2_000_000} {
		opts := o
		opts.Base.DBP.QuantumCPUCycles = q
		opts.Mixes = mixes
		_, means, err := policySweep(opts, []sim.PolicyPoint{
			{Label: "DBP", Scheduler: sim.SchedFRFCFS, Partition: sim.PartDBP},
		})
		if err != nil {
			return Outcome{}, fmt.Errorf("quantum=%d: %w", q, err)
		}
		t.AddRow(fmt.Sprintf("%d", q),
			fmt.Sprintf("%.3f", means[0].WeightedSpeedup), fmt.Sprintf("%.3f", means[0].MaxSlowdown))
		o.log("sens-quantum: %d done", q)
	}
	return Outcome{
		ID:    "fig12",
		Title: "Sensitivity: DBP repartitioning quantum",
		Table: t,
		Summary: []string{
			"Short quanta track phases but thrash pages; long quanta adapt too slowly.",
		},
	}, nil
}

// Dynamics reproduces the allocation-over-time figure (the paper's
// Fig. 13): a phase-changing thread's bank allocation follows its demand.
func Dynamics(o Options) (Outcome, error) {
	cfg := o.Base
	cfg.Cores = 4
	cfg.Scheduler = sim.SchedFRFCFS
	cfg.Partition = sim.PartDBP

	// Thread 0 alternates between a wide multi-stream phase (high demand)
	// and a pointer-chase phase (demand 1) every 400k instructions.
	wide, _ := workload.ByName("lbm-like")
	chase, _ := workload.ByName("mcf-like")
	phased := trace.NewPhased([]trace.Phase{
		{Gen: wide.New(11), Instructions: 400_000},
		{Gen: chase.New(12), Instructions: 400_000},
	})
	steady, _ := workload.ByName("milc-like")
	light, _ := workload.ByName("calculix-like")
	benches := []sim.Bench{
		{Name: "phased", Gen: phased},
		{Name: steady.Name, Gen: steady.New(13)},
		{Name: steady.Name, Gen: steady.New(14)},
		{Name: light.Name, Gen: light.New(15)},
	}
	sys, err := sim.NewSystem(cfg, benches)
	if err != nil {
		return Outcome{}, err
	}
	if _, err := sys.Run(o.Warmup, 4*o.Measure, 0); err != nil {
		return Outcome{}, fmt.Errorf("dynamics: %w", err)
	}
	t := stats.NewTable("quantum", "phased.banks", "milc#1.banks", "milc#2.banks", "light.pool")
	hist := sys.DBP().History()
	minB, maxB := 1<<30, 0
	for _, a := range hist {
		t.AddRow(fmt.Sprintf("%d", a.Quantum),
			fmt.Sprintf("%d", a.Colors[0]), fmt.Sprintf("%d", a.Colors[1]),
			fmt.Sprintf("%d", a.Colors[2]), fmt.Sprintf("%d", a.Colors[3]))
		if a.Colors[0] < minB {
			minB = a.Colors[0]
		}
		if a.Colors[0] > maxB {
			maxB = a.Colors[0]
		}
	}
	series := make([][]float64, 2)
	for _, a := range hist {
		series[0] = append(series[0], float64(a.Colors[0]))
		series[1] = append(series[1], float64(a.Colors[1]))
	}
	chart := stats.SeriesChart("allocation over repartitions:",
		[]string{"phased", "milc#1"}, series)
	return Outcome{
		ID:    "fig13",
		Title: "Dynamics: bank allocation tracks a phase-changing thread",
		Table: t,
		Summary: []string{
			fmt.Sprintf("The phased thread's allocation moved between %d and %d banks across %d repartitions.",
				minB, maxB, len(hist)),
			chart,
		},
	}, nil
}

// Ablation evaluates DBP's design choices (DESIGN.md's ablation list).
func Ablation(o Options) (Outcome, error) {
	mixes := mixesOfCategory(o, "M")
	type variant struct {
		label  string
		mutate func(*sim.Config)
	}
	variants := []variant{
		{"DBP(default)", func(c *sim.Config) {}},
		{"demand=MPKI", func(c *sim.Config) { c.DBP.Estimator = core.EstimateMPKI }},
		{"demand=achievedBLP", func(c *sim.Config) { c.DBP.Estimator = core.EstimateAchievedBLP }},
		{"light=spread-all", func(c *sim.Config) { c.DBP.LightPlacement = core.LightSpreadAll }},
		{"hysteresis=3", func(c *sim.Config) { c.DBP.HysteresisColors = 3 }},
		{"no-migration", func(c *sim.Config) { c.MigratePagesPerQuantum = 0 }},
	}
	t := stats.NewTable("variant", "WS", "MS", "HS")
	var summary []string
	var baseline stats.SystemMetrics
	for i, v := range variants {
		opts := o
		v.mutate(&opts.Base)
		opts.Mixes = mixes
		_, means, err := policySweep(opts, []sim.PolicyPoint{
			{Label: v.label, Scheduler: sim.SchedFRFCFS, Partition: sim.PartDBP},
		})
		if err != nil {
			return Outcome{}, fmt.Errorf("ablation %s: %w", v.label, err)
		}
		m := means[0]
		t.AddRow(v.label, fmt.Sprintf("%.3f", m.WeightedSpeedup),
			fmt.Sprintf("%.3f", m.MaxSlowdown), fmt.Sprintf("%.3f", m.HarmonicSpeedup))
		if i == 0 {
			baseline = m
		} else {
			ws, fair := m.Delta(baseline)
			summary = append(summary, fmt.Sprintf("%s vs default: %+.1f%% WS, %+.1f%% fairness", v.label, ws, fair))
		}
		o.log("ablation: %s done", v.label)
	}
	return Outcome{
		ID:      "ablation",
		Title:   "Ablation: DBP design choices",
		Table:   t,
		Summary: summary,
	}, nil
}

// TCMThreshSweep quantifies the latency-cluster decision documented in
// DESIGN.md: ClusterThresh > 0 on this substrate.
func TCMThreshSweep(o Options) (Outcome, error) {
	t := stats.NewTable("ClusterThresh", "TCM.WS", "TCM.MS")
	mixes := mixesOfCategory(o, "M")
	for _, th := range []float64{0, 0.05, 0.10} {
		opts := o
		opts.Base.TCMClusterThresh = th
		opts.Mixes = mixes
		_, means, err := policySweep(opts, []sim.PolicyPoint{
			{Label: "TCM", Scheduler: sim.SchedTCM, Partition: sim.PartNone},
		})
		if err != nil {
			return Outcome{}, fmt.Errorf("thresh=%.2f: %w", th, err)
		}
		t.AddRow(fmt.Sprintf("%.2f", th),
			fmt.Sprintf("%.3f", means[0].WeightedSpeedup), fmt.Sprintf("%.3f", means[0].MaxSlowdown))
		o.log("tcm-thresh: %.2f done", th)
	}
	return Outcome{
		ID:    "tcm-thresh",
		Title: "TCM latency-cluster threshold on this substrate",
		Table: t,
	}, nil
}
