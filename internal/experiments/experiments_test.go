package experiments

import (
	"strings"
	"testing"

	"dbpsim/internal/sim"
	"dbpsim/internal/workload"
)

// tinyOptions keeps experiment tests fast: one small mix, small budgets.
func tinyOptions() Options {
	base := sim.DefaultConfig(8)
	base.SchedQuantumCPUCycles = 50_000
	base.DBP.QuantumCPUCycles = 100_000
	base.MCP.QuantumCPUCycles = 100_000
	return Options{
		Base:    base,
		Warmup:  10_000,
		Measure: 20_000,
		Mixes:   []workload.Mix{workload.Mixes4()[1]},
	}
}

func TestDefaultOptions(t *testing.T) {
	full := DefaultOptions(false)
	quick := DefaultOptions(true)
	if len(full.Mixes) != 12 || len(quick.Mixes) != 3 {
		t.Errorf("mix counts: full=%d quick=%d", len(full.Mixes), len(quick.Mixes))
	}
	if quick.Measure >= full.Measure {
		t.Error("quick budget not smaller")
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	for _, id := range []string{"table1", "table2", "fig1", "fig2", "main",
		"dbptcm", "mcp", "banks", "cores", "quantum", "dynamics", "ablation", "tcmthresh"} {
		if reg[id] == nil {
			t.Errorf("missing experiment %q", id)
		}
	}
	if len(Names()) != len(reg) {
		t.Error("Names() incomplete")
	}
}

func TestTable1(t *testing.T) {
	out := Table1(sim.DefaultConfig(8))
	txt := out.Table.Text()
	for _, want := range []string{"cores", "DRAM", "DBP", "L1D"} {
		if !strings.Contains(txt, want) {
			t.Errorf("table1 missing %q", want)
		}
	}
	var sb strings.Builder
	if err := out.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "table1") {
		t.Error("Write missing ID")
	}
}

func TestTable2Quick(t *testing.T) {
	o := tinyOptions()
	out, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.NumRows() != 18 {
		t.Errorf("table2 rows = %d, want 18", out.Table.NumRows())
	}
	txt := out.Table.Text()
	if !strings.Contains(txt, "mcf-like") || !strings.Contains(txt, "povray-like") {
		t.Error("table2 missing benchmarks")
	}
}

func TestFig1Quick(t *testing.T) {
	out, err := Fig1(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.NumRows() != 2 {
		t.Errorf("fig1 rows = %d", out.Table.NumRows())
	}
	if len(out.Summary) == 0 {
		t.Error("fig1 missing summary")
	}
}

func TestFig2Quick(t *testing.T) {
	out, err := Fig2(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.NumRows() != 5 {
		t.Errorf("fig2 rows = %d, want 5", out.Table.NumRows())
	}
}

func TestMainQuick(t *testing.T) {
	progress := 0
	o := tinyOptions()
	o.Progress = func(string) { progress++ }
	out, err := Main(o)
	if err != nil {
		t.Fatal(err)
	}
	// one mix + MEAN row
	if out.Table.NumRows() != 2 {
		t.Errorf("main rows = %d, want 2", out.Table.NumRows())
	}
	if len(out.Summary) < 2 {
		t.Error("main missing summary claims")
	}
	if !strings.Contains(out.Summary[0], "paper") {
		t.Errorf("summary lacks paper claim: %q", out.Summary[0])
	}
	if progress == 0 {
		t.Error("progress callback never fired")
	}
}

func TestDBPTCMAndMCPQuick(t *testing.T) {
	o := tinyOptions()
	if _, err := DBPTCM(o); err != nil {
		t.Fatal(err)
	}
	out, err := VsMCP(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Table.Text(), "MCP.WS") {
		t.Error("mcp table missing columns")
	}
}

func TestSensBanksQuick(t *testing.T) {
	out, err := SensBanks(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.NumRows() != 3 {
		t.Errorf("banks rows = %d, want 3", out.Table.NumRows())
	}
}

func TestSensQuantumQuick(t *testing.T) {
	out, err := SensQuantum(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.NumRows() != 4 {
		t.Errorf("quantum rows = %d, want 4", out.Table.NumRows())
	}
}

func TestSensCoresQuick(t *testing.T) {
	o := tinyOptions()
	o.Warmup, o.Measure = 5_000, 10_000
	out, err := SensCores(o)
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.NumRows() != 3 {
		t.Errorf("cores rows = %d, want 3", out.Table.NumRows())
	}
}

func TestDynamicsQuick(t *testing.T) {
	o := tinyOptions()
	out, err := Dynamics(o)
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.NumRows() == 0 {
		t.Error("dynamics recorded no repartitions")
	}
}

func TestAblationQuick(t *testing.T) {
	out, err := Ablation(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.NumRows() != 6 {
		t.Errorf("ablation rows = %d, want 6", out.Table.NumRows())
	}
	if len(out.Summary) != 5 {
		t.Errorf("ablation summary lines = %d, want 5", len(out.Summary))
	}
}

func TestTCMThreshQuick(t *testing.T) {
	out, err := TCMThreshSweep(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.NumRows() != 3 {
		t.Errorf("tcm-thresh rows = %d, want 3", out.Table.NumRows())
	}
}

func TestMixesOfCategoryFallback(t *testing.T) {
	o := tinyOptions() // only an M mix present
	if got := mixesOfCategory(o, "H"); len(got) != len(o.Mixes) {
		t.Error("fallback to full list failed")
	}
	o.Mixes = workload.Mixes8()
	if got := mixesOfCategory(o, "H"); len(got) != 4 {
		t.Errorf("H mixes = %d, want 4", len(got))
	}
}

func TestPrefetchQuick(t *testing.T) {
	out, err := Prefetch(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.NumRows() != 3 {
		t.Errorf("prefetch rows = %d, want 3", out.Table.NumRows())
	}
}

func TestEnergyQuick(t *testing.T) {
	out, err := Energy(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.NumRows() != 3 {
		t.Errorf("energy rows = %d, want 3", out.Table.NumRows())
	}
	if !strings.Contains(out.Table.Text(), "nJ/access") {
		t.Error("energy column missing")
	}
}

func TestPARBSQuick(t *testing.T) {
	out, err := PARBSBaseline(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.NumRows() != 2 { // one mix + MEAN
		t.Errorf("parbs rows = %d, want 2", out.Table.NumRows())
	}
}

func TestOutcomeMarkdown(t *testing.T) {
	out := Table1(sim.DefaultConfig(4))
	var sb strings.Builder
	if err := out.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, "## table1") || !strings.Contains(got, "| component |") {
		t.Errorf("markdown = %q", got)
	}
}

func TestMappingQuick(t *testing.T) {
	out, err := Mapping(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.NumRows() != 5 {
		t.Errorf("mapping rows = %d, want 5", out.Table.NumRows())
	}
}

func TestLLCQuick(t *testing.T) {
	out, err := LLC(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.NumRows() != 5 {
		t.Errorf("llc rows = %d, want 5", out.Table.NumRows())
	}
}

func TestTimingQuick(t *testing.T) {
	out, err := Timing(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.NumRows() != 2 {
		t.Errorf("timing rows = %d, want 2", out.Table.NumRows())
	}
}
