// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each function returns an
// Outcome holding the paper-style table plus headline summary lines that
// state the measured deltas next to the paper's claims.
//
// The same functions back cmd/dbpsweep and the root benchmark harness.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"dbpsim/internal/obs"
	"dbpsim/internal/sim"
	"dbpsim/internal/stats"
	"dbpsim/internal/workload"
)

// Options sets the run budget and workload scope shared by all experiments.
type Options struct {
	// Base is the configuration template.
	Base sim.Config
	// Warmup and Measure are per-core instruction budgets.
	Warmup  uint64
	Measure uint64
	// Mixes is the 8-core evaluation set (subset of workload.Mixes8).
	Mixes []workload.Mix
	// Progress, if non-nil, receives one line per completed run.
	Progress func(string)
	// LedgerDir, when non-empty, writes one machine-readable run ledger
	// per (mix, policy) run of every policy sweep into this directory
	// (`<mix>_<scheduler>_<partition>.json`; see internal/obs). The same
	// run reached from two experiments overwrites its own file — runs are
	// deterministic, so the content is identical.
	LedgerDir string
}

// DefaultOptions returns full-evaluation budgets; quick shrinks both the
// budgets and the mix list for fast regression runs.
func DefaultOptions(quick bool) Options {
	base := sim.DefaultConfig(8)
	if quick {
		return Options{
			Base:    base,
			Warmup:  100_000,
			Measure: 200_000,
			Mixes:   []workload.Mix{workload.Mixes8()[0], workload.Mixes8()[4], workload.Mixes8()[8]},
		}
	}
	return Options{
		Base:    base,
		Warmup:  200_000,
		Measure: 400_000,
		Mixes:   workload.Mixes8(),
	}
}

// progressMu serialises Progress callbacks from concurrent workers.
var progressMu sync.Mutex

func (o Options) log(format string, args ...any) {
	if o.Progress == nil {
		return
	}
	progressMu.Lock()
	defer progressMu.Unlock()
	o.Progress(fmt.Sprintf(format, args...))
}

// Bar is one policy's suite-mean metrics, for chart rendering.
type Bar struct {
	Label string
	WS    float64
	MS    float64
}

// Outcome is one regenerated table/figure.
type Outcome struct {
	// ID is the experiment identifier ("table2", "fig6", ...).
	ID string
	// Title describes what the paper reports there.
	Title string
	// Table holds the regenerated rows.
	Table *stats.TableWriter
	// Summary holds headline lines (measured vs. paper claim).
	Summary []string
	// Bars holds suite means per policy when the experiment is a policy
	// sweep (rendered by `dbpsweep -plot`).
	Bars []Bar
}

// barsOf converts sweep means to chart bars.
func barsOf(policies []sim.PolicyPoint, means []stats.SystemMetrics) []Bar {
	out := make([]Bar, 0, len(policies))
	for i, p := range policies {
		if i < len(means) {
			out = append(out, Bar{Label: p.Label, WS: means[i].WeightedSpeedup, MS: means[i].MaxSlowdown})
		}
	}
	return out
}

// Table1 renders the simulated system configuration (the paper's Table 1).
func Table1(base sim.Config) Outcome {
	t := stats.NewTable("component", "configuration")
	g := base.Geometry
	t.AddRow("cores", fmt.Sprintf("%d-wide, %d-entry window, %d MSHRs, %d× memory clock",
		base.CPU.Width, base.CPU.ROBSize, base.CPU.MSHRs, base.CPUClockRatio))
	t.AddRow("L1D", fmt.Sprintf("%d KiB, %d-way, %d B lines, %d-cycle",
		base.L1.SizeBytes>>10, base.L1.Ways, base.L1.LineBytes, base.CPU.L1Latency))
	t.AddRow("L2 (private)", fmt.Sprintf("%d KiB, %d-way, %d-cycle",
		base.L2.SizeBytes>>10, base.L2.Ways, base.CPU.L2Latency))
	t.AddRow("DRAM", fmt.Sprintf("%d channels × %d ranks × %d banks (%d colors), %d B rows",
		g.Channels, g.RanksPerChannel, g.BanksPerRank, g.NumColors(), g.RowBytes()))
	t.AddRow("timing", fmt.Sprintf("DDR3-1600-class: tRCD=%d tRP=%d CL=%d tRAS=%d tFAW=%d (memory cycles)",
		base.Timing.TRCD, base.Timing.TRP, base.Timing.CL, base.Timing.TRAS, base.Timing.TFAW))
	t.AddRow("controller", fmt.Sprintf("%d-entry read queue, %d-entry write queue, drain %d→%d, open page",
		base.Ctrl.ReadQueueCap, base.Ctrl.WriteQueueCap, base.Ctrl.WriteHighWatermark, base.Ctrl.WriteLowWatermark))
	t.AddRow("DBP", fmt.Sprintf("quantum %d CPU cycles, light threshold %.1f MPKI, hysteresis %d",
		base.DBP.QuantumCPUCycles, base.DBP.LightMPKI, base.DBP.HysteresisColors))
	return Outcome{
		ID:    "table1",
		Title: "System configuration",
		Table: t,
	}
}

// Table2 characterises every benchmark alone (the paper's Table 2: MPKI,
// RBL, BLP).
func Table2(o Options) (Outcome, error) {
	t := stats.NewTable("benchmark", "class", "IPC", "MPKI", "RBL", "BLP")
	for _, spec := range workload.Suite() {
		cfg := o.Base
		cfg.Cores = 1
		cfg.Scheduler = sim.SchedFRFCFS
		cfg.Partition = sim.PartNone
		sys, err := sim.NewSystem(cfg, []sim.Bench{{Name: spec.Name, Gen: spec.New(cfg.Seed)}})
		if err != nil {
			return Outcome{}, err
		}
		res, err := sys.Run(o.Warmup, o.Measure, 0)
		if err != nil {
			return Outcome{}, fmt.Errorf("table2 %s: %w", spec.Name, err)
		}
		th := res.Threads[0]
		t.AddRow(spec.Name, spec.Class.String(),
			fmt.Sprintf("%.3f", th.IPC), fmt.Sprintf("%.1f", th.MPKI),
			fmt.Sprintf("%.2f", th.RBL), fmt.Sprintf("%.2f", th.BLP))
		o.log("table2: %s done", spec.Name)
	}
	return Outcome{
		ID:    "table2",
		Title: "Benchmark characteristics (alone runs)",
		Table: t,
		Summary: []string{
			"Suite spans the paper's three axes: MPKI 0.05–35, RBL 0.0–0.95, BLP 1–6.",
		},
	}, nil
}

// Fig1 reproduces the motivation figure: interference between a streaming
// and a random thread sharing all banks under FR-FCFS, versus running
// alone.
func Fig1(o Options) (Outcome, error) {
	stream, _ := workload.ByName("libquantum-like")
	random, _ := workload.ByName("milc-like")
	e := sim.NewExperiment(o.Base, o.Warmup, o.Measure)
	mix := workload.Mix{Name: "FIG1", Category: "M", Members: []string{stream.Name, random.Name}}
	run, err := e.RunMix(mix, sim.SchedFRFCFS, sim.PartNone)
	if err != nil {
		return Outcome{}, err
	}
	t := stats.NewTable("thread", "IPC.alone", "IPC.shared", "slowdown", "RBL.shared")
	for i, th := range run.Result.Threads {
		t.AddRow(th.Name,
			fmt.Sprintf("%.3f", run.Metrics.Threads[i].IPCAlone),
			fmt.Sprintf("%.3f", th.IPC),
			fmt.Sprintf("%.2f", run.Metrics.Threads[i].Slowdown()),
			fmt.Sprintf("%.2f", th.RBL))
	}
	return Outcome{
		ID:    "fig1",
		Title: "Motivation: unmanaged interference at shared banks (FR-FCFS)",
		Table: t,
		Summary: []string{
			fmt.Sprintf("Both threads slow down when sharing banks (max slowdown %.2f): interference is real.",
				run.Metrics.MaxSlowdown),
		},
	}, nil
}

// Fig2 reproduces the second motivation figure: restricting a high-BLP
// thread to an equal-share bank count destroys its bank-level parallelism.
func Fig2(o Options) (Outcome, error) {
	spec, _ := workload.ByName("lbm-like")
	numColors := o.Base.Geometry.NumColors()
	t := stats.NewTable("banks", "IPC", "BLP")
	var ipcFull, ipcTwo float64
	for _, banks := range []int{numColors, numColors / 2, numColors / 4, 2, 1} {
		cfg := o.Base
		cfg.Cores = 1
		cfg.Partition = sim.PartFixed
		colors := make([]int, banks)
		for i := range colors {
			colors[i] = i * (numColors / banks)
		}
		cfg.FixedMasks = [][]int{colors}
		sys, err := sim.NewSystem(cfg, []sim.Bench{{Name: spec.Name, Gen: spec.New(cfg.Seed)}})
		if err != nil {
			return Outcome{}, err
		}
		res, err := sys.Run(o.Warmup, o.Measure, 0)
		if err != nil {
			return Outcome{}, fmt.Errorf("fig2 banks=%d: %w", banks, err)
		}
		th := res.Threads[0]
		t.AddRow(fmt.Sprintf("%d", banks), fmt.Sprintf("%.3f", th.IPC), fmt.Sprintf("%.2f", th.BLP))
		if banks == numColors {
			ipcFull = th.IPC
		}
		if banks == 2 {
			ipcTwo = th.IPC
		}
		o.log("fig2: %d banks done", banks)
	}
	loss := 0.0
	if ipcFull > 0 {
		loss = 100 * (ipcFull - ipcTwo) / ipcFull
	}
	return Outcome{
		ID:    "fig2",
		Title: "Motivation: equal-share bank counts destroy BLP",
		Table: t,
		Summary: []string{
			fmt.Sprintf("Restricting the high-BLP thread to its equal share (2 of %d banks) costs %.0f%% of its alone IPC.",
				numColors, loss),
		},
	}, nil
}

// policySweep evaluates the given policies over the option's mixes —
// (mix, policy) runs execute concurrently on a bounded worker pool (every
// run is deterministic and independent, so results are identical to the
// serial order) — and returns per-mix rows plus suite means.
func policySweep(o Options, policies []sim.PolicyPoint) (*stats.TableWriter, []stats.SystemMetrics, error) {
	t := stats.NewTable(append([]string{"workload"}, policyColumns(policies)...)...)
	e := sim.NewExperiment(o.Base, o.Warmup, o.Measure)

	type job struct{ mi, pi int }
	type outcome struct {
		metrics stats.SystemMetrics
		err     error
	}
	jobs := make(chan job)
	results := make([][]outcome, len(o.Mixes))
	for i := range results {
		results[i] = make([]outcome, len(policies))
	}
	workers := runtime.NumCPU()
	if n := len(o.Mixes) * len(policies); workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				mix, p := o.Mixes[j.mi], policies[j.pi]
				run, err := e.RunMix(mix, p.Scheduler, p.Partition)
				if err != nil {
					results[j.mi][j.pi] = outcome{err: fmt.Errorf("%s on %s: %w", p.Label, mix.Name, err)}
					continue
				}
				if o.LedgerDir != "" {
					if err := writeRunLedger(o, run); err != nil {
						results[j.mi][j.pi] = outcome{err: fmt.Errorf("%s on %s: ledger: %w", p.Label, mix.Name, err)}
						continue
					}
				}
				results[j.mi][j.pi] = outcome{metrics: run.Metrics}
				o.log("%s: %s done (WS=%.3f MS=%.3f)", p.Label, mix.Name,
					run.Metrics.WeightedSpeedup, run.Metrics.MaxSlowdown)
			}
		}()
	}
	for mi := range o.Mixes {
		for pi := range policies {
			jobs <- job{mi, pi}
		}
	}
	close(jobs)
	wg.Wait()

	perPolicy := make([][]stats.SystemMetrics, len(policies))
	for mi, mix := range o.Mixes {
		cells := []string{mix.Name}
		for pi := range policies {
			r := results[mi][pi]
			if r.err != nil {
				return nil, nil, r.err
			}
			perPolicy[pi] = append(perPolicy[pi], r.metrics)
			cells = append(cells,
				fmt.Sprintf("%.3f", r.metrics.WeightedSpeedup),
				fmt.Sprintf("%.3f", r.metrics.MaxSlowdown))
		}
		t.AddRow(cells...)
	}
	means := make([]stats.SystemMetrics, len(policies))
	meanCells := []string{"MEAN"}
	for pi := range policies {
		means[pi] = stats.MeanAcross(perPolicy[pi])
		meanCells = append(meanCells,
			fmt.Sprintf("%.3f", means[pi].WeightedSpeedup),
			fmt.Sprintf("%.3f", means[pi].MaxSlowdown))
	}
	t.AddRow(meanCells...)
	return t, means, nil
}

// writeRunLedger persists one run's ledger under Options.LedgerDir.
func writeRunLedger(o Options, run sim.MixRun) error {
	if err := os.MkdirAll(o.LedgerDir, 0o755); err != nil {
		return err
	}
	l, err := sim.BuildLedger("dbpsweep", o.Base, o.Warmup, o.Measure, run, nil)
	if err != nil {
		return err
	}
	name := fmt.Sprintf("%s_%s_%s.json", run.Mix.Name, run.Scheduler, run.Partition)
	return obs.SaveLedger(filepath.Join(o.LedgerDir, name), l)
}

func policyColumns(policies []sim.PolicyPoint) []string {
	var out []string
	for _, p := range policies {
		out = append(out, p.Label+".WS", p.Label+".MS")
	}
	return out
}

// claim renders a measured-vs-paper comparison line.
func claim(what string, cur, base stats.SystemMetrics, paperWS, paperFair float64) string {
	ws, fair := cur.Delta(base)
	return fmt.Sprintf("%s: %+.1f%% throughput, %+.1f%% fairness (paper: %+.1f%%, %+.1f%%)",
		what, ws, fair, paperWS, paperFair)
}

// Main reproduces the headline comparison (the paper's Figs. 6–7): FR-FCFS,
// equal bank partitioning and DBP across the mix set.
func Main(o Options) (Outcome, error) {
	policies := []sim.PolicyPoint{
		{Label: "FRFCFS", Scheduler: sim.SchedFRFCFS, Partition: sim.PartNone},
		{Label: "EqualBP", Scheduler: sim.SchedFRFCFS, Partition: sim.PartEqual},
		{Label: "DBP", Scheduler: sim.SchedFRFCFS, Partition: sim.PartDBP},
	}
	t, means, err := policySweep(o, policies)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{
		ID:    "fig6-7",
		Title: "Main result: WS and MS of FR-FCFS / EqualBP / DBP",
		Table: t,
		Summary: []string{
			claim("DBP vs EqualBP", means[2], means[1], 4.3, 16),
			claim("DBP vs FRFCFS", means[2], means[0], 0, 0),
		},
		Bars: barsOf(policies, means),
	}, nil
}

// DBPTCM reproduces the combination study (the paper's Fig. 8): TCM alone
// versus DBP-TCM.
func DBPTCM(o Options) (Outcome, error) {
	policies := []sim.PolicyPoint{
		{Label: "TCM", Scheduler: sim.SchedTCM, Partition: sim.PartNone},
		{Label: "DBP", Scheduler: sim.SchedFRFCFS, Partition: sim.PartDBP},
		{Label: "DBP-TCM", Scheduler: sim.SchedTCM, Partition: sim.PartDBP},
	}
	t, means, err := policySweep(o, policies)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{
		ID:    "fig8",
		Title: "Combination: TCM vs DBP vs DBP-TCM (orthogonality)",
		Table: t,
		Summary: []string{
			claim("DBP-TCM vs TCM", means[2], means[0], 6.2, 16.7),
			claim("DBP-TCM vs DBP", means[2], means[1], 0, 0),
		},
		Bars: barsOf(policies, means),
	}, nil
}

// VsMCP reproduces the channel-partitioning comparison (the paper's
// Fig. 9): MCP versus DBP-TCM.
func VsMCP(o Options) (Outcome, error) {
	policies := []sim.PolicyPoint{
		{Label: "MCP", Scheduler: sim.SchedFRFCFS, Partition: sim.PartMCP},
		{Label: "DBP-TCM", Scheduler: sim.SchedTCM, Partition: sim.PartDBP},
	}
	t, means, err := policySweep(o, policies)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{
		ID:    "fig9",
		Title: "Versus channel partitioning: MCP vs DBP-TCM",
		Table: t,
		Summary: []string{
			claim("DBP-TCM vs MCP", means[1], means[0], 5.3, 37),
		},
		Bars: barsOf(policies, means),
	}, nil
}
