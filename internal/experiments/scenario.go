package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"dbpsim/internal/obs"
	"dbpsim/internal/scenario"
	"dbpsim/internal/sim"
	"dbpsim/internal/stats"
)

// ScenarioPolicies is the policy comparison run on phase-shifting
// scenarios: the unpartitioned baseline, static equal partitioning, MCP,
// and DBP, all under FR-FCFS so the partition policy is the only variable.
func ScenarioPolicies() []sim.PolicyPoint {
	return []sim.PolicyPoint{
		{Label: "FRFCFS", Scheduler: sim.SchedFRFCFS, Partition: sim.PartNone},
		{Label: "EqualBP", Scheduler: sim.SchedFRFCFS, Partition: sim.PartEqual},
		{Label: "MCP", Scheduler: sim.SchedFRFCFS, Partition: sim.PartMCP},
		{Label: "DBP", Scheduler: sim.SchedFRFCFS, Partition: sim.PartDBP},
	}
}

// ScenarioSweep evaluates one phase-shifting scenario under the standard
// policy comparison and reports, per policy, the paper metrics plus the
// reaction record: how many timeline demand shifts the partition policy
// answered with a mask change, and how quickly. With Options.LedgerDir set
// it also writes one full ledger (epoch series, repartitions, shifts) per
// policy as scenario-<name>_<scheduler>_<partition>.json.
func ScenarioSweep(o Options, sc *scenario.Scenario) (Outcome, error) {
	e := sim.NewExperiment(o.Base, o.Warmup, o.Measure)
	policies := ScenarioPolicies()
	t := stats.NewTable("policy", "WS", "HS", "MS", "shifts", "reacted", "median-react", "quanta")
	var summary []string

	dbpQ := o.Base.DBP.QuantumCPUCycles
	if dbpQ == 0 {
		dbpQ = 1
	}
	for _, p := range policies {
		rec, err := obs.NewRecorder(obs.Options{
			NumThreads: sc.Cores(),
			NumBanks:   o.Base.Geometry.NumColors(),
		})
		if err != nil {
			return Outcome{}, err
		}
		run, err := e.RunScenarioRecordedContext(context.Background(), sc, p.Scheduler, p.Partition, rec)
		if err != nil {
			return Outcome{}, fmt.Errorf("%s on scenario %s: %w", p.Label, sc.Name, err)
		}
		shifts := rec.Shifts()
		reacted, median := reactionStats(shifts)
		medianCell, quantaCell := "-", "-"
		if reacted > 0 {
			medianCell = fmt.Sprintf("%d", median)
			quantaCell = fmt.Sprintf("%.1f", float64(median)/float64(dbpQ))
		}
		t.AddRow(p.Label,
			fmt.Sprintf("%.3f", run.Metrics.WeightedSpeedup),
			fmt.Sprintf("%.3f", run.Metrics.HarmonicSpeedup),
			fmt.Sprintf("%.3f", run.Metrics.MaxSlowdown),
			fmt.Sprintf("%d", len(shifts)),
			fmt.Sprintf("%d", reacted),
			medianCell, quantaCell)
		if reacted > 0 {
			summary = append(summary, fmt.Sprintf(
				"%s answered %d/%d demand shifts; median reaction %d cycles (%.1f DBP quanta)",
				p.Label, reacted, len(shifts), median, float64(median)/float64(dbpQ)))
		} else {
			summary = append(summary, fmt.Sprintf(
				"%s answered 0/%d demand shifts (no mask change after any shift)",
				p.Label, len(shifts)))
		}
		if o.LedgerDir != "" {
			if err := writeScenarioLedger(o, run, rec); err != nil {
				return Outcome{}, err
			}
		}
		o.log("%s: scenario %s done (WS=%.3f MS=%.3f, %d/%d shifts reacted)",
			p.Label, sc.Name, run.Metrics.WeightedSpeedup, run.Metrics.MaxSlowdown, reacted, len(shifts))
	}
	return Outcome{
		ID:      "scenario-" + sc.Name,
		Title:   fmt.Sprintf("Scenario %s: %s", sc.Name, sc.Description),
		Table:   t,
		Summary: summary,
	}, nil
}

// reactionStats reduces a shift record to (answered count, median reaction
// latency in CPU cycles over the answered shifts).
func reactionStats(shifts []obs.Shift) (reacted int, median uint64) {
	var lats []uint64
	for _, s := range shifts {
		if s.Reacted {
			lats = append(lats, s.ReactionLatency)
		}
	}
	if len(lats) == 0 {
		return 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return len(lats), lats[len(lats)/2]
}

// writeScenarioLedger persists one scenario run's full ledger (including
// the recorder's epoch series and shift record) under Options.LedgerDir.
func writeScenarioLedger(o Options, run sim.MixRun, rec *obs.Recorder) error {
	if err := os.MkdirAll(o.LedgerDir, 0o755); err != nil {
		return err
	}
	l, err := sim.BuildLedger("dbpsweep", o.Base, o.Warmup, o.Measure, run, rec)
	if err != nil {
		return err
	}
	name := fmt.Sprintf("scenario-%s_%s_%s.json", run.Scenario, run.Scheduler, run.Partition)
	return obs.SaveLedger(filepath.Join(o.LedgerDir, name), l)
}
