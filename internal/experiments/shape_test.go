package experiments

import (
	"testing"

	"dbpsim/internal/sim"
	"dbpsim/internal/workload"
)

// TestPaperShape is the reproduction's regression guard: it asserts the
// paper's qualitative orderings on one medium mix at evaluation budgets.
// Skipped under -short (it runs several full-length simulations).
func TestPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-shape regression needs full-length runs")
	}
	e := sim.NewExperiment(sim.DefaultConfig(8), 200_000, 400_000)
	mix, _ := workload.MixByName("W8-M1")

	run := func(s sim.SchedulerKind, p sim.PartitionKind) (ws, ms float64) {
		r, err := e.RunMix(mix, s, p)
		if err != nil {
			t.Fatalf("%s/%s: %v", s, p, err)
		}
		return r.Metrics.WeightedSpeedup, r.Metrics.MaxSlowdown
	}

	frWS, frMS := run(sim.SchedFRFCFS, sim.PartNone)
	eqWS, eqMS := run(sim.SchedFRFCFS, sim.PartEqual)
	dbpWS, dbpMS := run(sim.SchedFRFCFS, sim.PartDBP)
	tcmWS, tcmMS := run(sim.SchedTCM, sim.PartNone)
	comboWS, comboMS := run(sim.SchedTCM, sim.PartDBP)
	mcpWS, mcpMS := run(sim.SchedFRFCFS, sim.PartMCP)

	t.Logf("FRFCFS %.3f/%.3f EqualBP %.3f/%.3f DBP %.3f/%.3f TCM %.3f/%.3f DBP-TCM %.3f/%.3f MCP %.3f/%.3f",
		frWS, frMS, eqWS, eqMS, dbpWS, dbpMS, tcmWS, tcmMS, comboWS, comboMS, mcpWS, mcpMS)

	// Abstract claim 1: DBP beats equal bank partitioning on both metrics.
	if dbpWS <= eqWS {
		t.Errorf("DBP WS %.3f not above EqualBP %.3f", dbpWS, eqWS)
	}
	if dbpMS >= eqMS {
		t.Errorf("DBP MS %.3f not below EqualBP %.3f", dbpMS, eqMS)
	}
	// Abstract claim 2: DBP-TCM beats TCM on both metrics.
	if comboWS <= tcmWS {
		t.Errorf("DBP-TCM WS %.3f not above TCM %.3f", comboWS, tcmWS)
	}
	if comboMS >= tcmMS {
		t.Errorf("DBP-TCM MS %.3f not below TCM %.3f", comboMS, tcmMS)
	}
	// Abstract claim 3: DBP-TCM beats MCP on both metrics, with a large
	// fairness margin (the paper reports +37%).
	if comboWS <= mcpWS {
		t.Errorf("DBP-TCM WS %.3f not above MCP %.3f", comboWS, mcpWS)
	}
	if comboMS >= mcpMS*0.9 {
		t.Errorf("DBP-TCM MS %.3f lacks a clear fairness margin over MCP %.3f", comboMS, mcpMS)
	}
	// Motivation: partitioning changes fairness relative to FR-FCFS; the
	// combined scheme must not be less fair than the unmanaged baseline.
	if comboMS > frMS*1.05 {
		t.Errorf("DBP-TCM MS %.3f worse than unmanaged FR-FCFS %.3f", comboMS, frMS)
	}
}
