package experiments

import (
	"fmt"

	"dbpsim/internal/addr"
	"dbpsim/internal/dram"
	"dbpsim/internal/sim"
	"dbpsim/internal/stats"
)

// Prefetch evaluates the optional stride prefetcher (a paper-era extension;
// prefetch traffic amplifies bank contention, making partitioning matter
// more).
func Prefetch(o Options) (Outcome, error) {
	t := stats.NewTable("config", "FRFCFS.WS", "FRFCFS.MS", "DBP.WS", "DBP.MS")
	mixes := mixesOfCategory(o, "M")
	var rows []string
	for _, degree := range []int{0, 2, 4} {
		opts := o
		opts.Base.CPU.PrefetchDegree = degree
		opts.Mixes = mixes
		_, means, err := policySweep(opts, []sim.PolicyPoint{
			{Label: "FRFCFS", Scheduler: sim.SchedFRFCFS, Partition: sim.PartNone},
			{Label: "DBP", Scheduler: sim.SchedFRFCFS, Partition: sim.PartDBP},
		})
		if err != nil {
			return Outcome{}, fmt.Errorf("prefetch degree=%d: %w", degree, err)
		}
		label := "off"
		if degree > 0 {
			label = fmt.Sprintf("stride×%d", degree)
		}
		t.AddRow(label,
			fmt.Sprintf("%.3f", means[0].WeightedSpeedup), fmt.Sprintf("%.3f", means[0].MaxSlowdown),
			fmt.Sprintf("%.3f", means[1].WeightedSpeedup), fmt.Sprintf("%.3f", means[1].MaxSlowdown))
		ws, fair := means[1].Delta(means[0])
		rows = append(rows, fmt.Sprintf("prefetch %s: DBP %+.1f%% WS / %+.1f%% fairness vs FRFCFS", label, ws, fair))
		o.log("prefetch: degree %d done", degree)
	}
	return Outcome{
		ID:      "prefetch",
		Title:   "Extension: stride prefetching interaction with bank partitioning",
		Table:   t,
		Summary: rows,
	}, nil
}

// Energy compares per-policy DRAM energy (an extension: partitioning that
// preserves row-buffer locality also saves activate energy).
func Energy(o Options) (Outcome, error) {
	policies := []sim.PolicyPoint{
		{Label: "FRFCFS", Scheduler: sim.SchedFRFCFS, Partition: sim.PartNone},
		{Label: "EqualBP", Scheduler: sim.SchedFRFCFS, Partition: sim.PartEqual},
		{Label: "DBP", Scheduler: sim.SchedFRFCFS, Partition: sim.PartDBP},
	}
	t := stats.NewTable("policy", "WS", "MS", "nJ/access", "activates/kAccess")
	e := sim.NewExperiment(o.Base, o.Warmup, o.Measure)
	mix := o.Mixes[0]
	var summary []string
	for _, p := range policies {
		run, err := e.RunMix(mix, p.Scheduler, p.Partition)
		if err != nil {
			return Outcome{}, fmt.Errorf("energy %s: %w", p.Label, err)
		}
		transfers := run.Result.DRAM.Reads + run.Result.DRAM.Writes
		actsPerK := 0.0
		if transfers > 0 {
			actsPerK = 1000 * float64(run.Result.DRAM.Activates) / float64(transfers)
		}
		t.AddRow(p.Label,
			fmt.Sprintf("%.3f", run.Metrics.WeightedSpeedup),
			fmt.Sprintf("%.3f", run.Metrics.MaxSlowdown),
			fmt.Sprintf("%.2f", run.Result.EnergyPerAccess),
			fmt.Sprintf("%.0f", actsPerK))
		o.log("energy: %s done", p.Label)
		if p.Label == "DBP" {
			summary = append(summary, fmt.Sprintf(
				"DBP on %s: %.2f nJ/access (partitioning preserves row hits, saving activate energy)",
				mix.Name, run.Result.EnergyPerAccess))
		}
	}
	return Outcome{
		ID:      "energy",
		Title:   "Extension: DRAM energy per access by policy",
		Table:   t,
		Summary: summary,
	}, nil
}

// PARBSBaseline adds the PAR-BS scheduler to the comparison (an extra
// baseline beyond the paper's set).
func PARBSBaseline(o Options) (Outcome, error) {
	policies := []sim.PolicyPoint{
		{Label: "FRFCFS", Scheduler: sim.SchedFRFCFS, Partition: sim.PartNone},
		{Label: "PARBS", Scheduler: sim.SchedPARBS, Partition: sim.PartNone},
		{Label: "PARBS-DBP", Scheduler: sim.SchedPARBS, Partition: sim.PartDBP},
	}
	t, means, err := policySweep(Options{
		Base:     o.Base,
		Warmup:   o.Warmup,
		Measure:  o.Measure,
		Mixes:    mixesOfCategory(o, "M"),
		Progress: o.Progress,
	}, policies)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{
		ID:    "parbs",
		Title: "Extension: PAR-BS baseline with and without DBP",
		Table: t,
		Summary: []string{
			claim("PARBS-DBP vs PARBS", means[2], means[1], 0, 0),
		},
	}, nil
}

// Mapping compares address-mapping schemes (an extension): conventional
// page interleaving, cache-line channel interleaving, and permutation-based
// (XOR) bank indexing — and shows that DBP composes with XOR mapping.
func Mapping(o Options) (Outcome, error) {
	type point struct {
		label  string
		scheme addr.Scheme
		part   sim.PartitionKind
	}
	points := []point{
		{"page+none", addr.SchemePageInterleave, sim.PartNone},
		{"line+none", addr.SchemeLineInterleave, sim.PartNone},
		{"xor+none", addr.SchemeXORBank, sim.PartNone},
		{"page+dbp", addr.SchemePageInterleave, sim.PartDBP},
		{"xor+dbp", addr.SchemeXORBank, sim.PartDBP},
	}
	t := stats.NewTable("mapping", "WS", "MS")
	mixes := mixesOfCategory(o, "M")
	for _, p := range points {
		opts := o
		opts.Base.Mapping = p.scheme
		opts.Mixes = mixes
		_, means, err := policySweep(opts, []sim.PolicyPoint{
			{Label: p.label, Scheduler: sim.SchedFRFCFS, Partition: p.part},
		})
		if err != nil {
			return Outcome{}, fmt.Errorf("mapping %s: %w", p.label, err)
		}
		t.AddRow(p.label,
			fmt.Sprintf("%.3f", means[0].WeightedSpeedup), fmt.Sprintf("%.3f", means[0].MaxSlowdown))
		o.log("mapping: %s done", p.label)
	}
	return Outcome{
		ID:    "mapping",
		Title: "Extension: address-mapping schemes vs partitioning",
		Table: t,
		Summary: []string{
			"XOR bank permutation spreads conflicts without isolation; DBP composes with it (placement stays a pure function of the frame).",
		},
	}, nil
}

// LLC studies the optional shared last-level cache (an extension): bank
// partitioning composes with cache partitioning, the paper's closest
// sibling mechanism.
func LLC(o Options) (Outcome, error) {
	type point struct {
		label  string
		l3     int // KiB, 0 = no L3
		policy sim.L3PolicyKind
		part   sim.PartitionKind
	}
	points := []point{
		{"private-only", 0, sim.L3Shared, sim.PartNone},
		{"L3-shared", 4096, sim.L3Shared, sim.PartNone},
		{"L3-equal", 4096, sim.L3Equal, sim.PartNone},
		{"L3-ucp", 4096, sim.L3UCP, sim.PartNone},
		{"L3-ucp+dbp", 4096, sim.L3UCP, sim.PartDBP},
	}
	t := stats.NewTable("config", "WS", "MS")
	mixes := mixesOfCategory(o, "M")
	for _, p := range points {
		opts := o
		opts.Base.L3.SizeBytes = p.l3 << 10
		opts.Base.L3Policy = p.policy
		opts.Mixes = mixes
		_, means, err := policySweep(opts, []sim.PolicyPoint{
			{Label: p.label, Scheduler: sim.SchedFRFCFS, Partition: p.part},
		})
		if err != nil {
			return Outcome{}, fmt.Errorf("llc %s: %w", p.label, err)
		}
		t.AddRow(p.label,
			fmt.Sprintf("%.3f", means[0].WeightedSpeedup), fmt.Sprintf("%.3f", means[0].MaxSlowdown))
		o.log("llc: %s done", p.label)
	}
	return Outcome{
		ID:    "llc",
		Title: "Extension: shared LLC and way partitioning (UCP) vs bank partitioning",
		Table: t,
		Summary: []string{
			"Cache partitioning manages capacity interference; bank partitioning manages access interference — the mechanisms stack.",
		},
	}, nil
}

// Timing compares DRAM generations (an extension): the policy story must
// hold across timing sets, not just DDR3-1600.
func Timing(o Options) (Outcome, error) {
	t := stats.NewTable("timing", "FRFCFS.WS", "FRFCFS.MS", "DBP.WS", "DBP.MS")
	mixes := mixesOfCategory(o, "M")
	for _, gen := range []struct {
		label  string
		timing dram.Timing
		ratio  int
	}{
		{"DDR3-1600", dram.DDR3_1600(), 4},
		{"DDR4-2400", dram.DDR4_2400(), 3},
	} {
		opts := o
		opts.Base.Timing = gen.timing
		opts.Base.CPUClockRatio = gen.ratio
		opts.Mixes = mixes
		_, means, err := policySweep(opts, []sim.PolicyPoint{
			{Label: "FRFCFS", Scheduler: sim.SchedFRFCFS, Partition: sim.PartNone},
			{Label: "DBP", Scheduler: sim.SchedFRFCFS, Partition: sim.PartDBP},
		})
		if err != nil {
			return Outcome{}, fmt.Errorf("timing %s: %w", gen.label, err)
		}
		t.AddRow(gen.label,
			fmt.Sprintf("%.3f", means[0].WeightedSpeedup), fmt.Sprintf("%.3f", means[0].MaxSlowdown),
			fmt.Sprintf("%.3f", means[1].WeightedSpeedup), fmt.Sprintf("%.3f", means[1].MaxSlowdown))
		o.log("timing: %s done", gen.label)
	}
	return Outcome{
		ID:    "timing",
		Title: "Extension: DRAM generation (DDR3 vs DDR4)",
		Table: t,
		Summary: []string{
			"DBP's advantage is a property of bank conflicts, not one timing set.",
		},
	}, nil
}
