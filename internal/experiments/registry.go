package experiments

import (
	"fmt"
	"io"
	"sort"

	"dbpsim/internal/stats"
)

// Runner executes one experiment.
type Runner func(Options) (Outcome, error)

// Registry maps experiment IDs (as used by `dbpsweep -exp`) to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table1":    func(o Options) (Outcome, error) { return Table1(o.Base), nil },
		"table2":    Table2,
		"fig1":      Fig1,
		"fig2":      Fig2,
		"main":      Main,
		"dbptcm":    DBPTCM,
		"mcp":       VsMCP,
		"banks":     SensBanks,
		"cores":     SensCores,
		"quantum":   SensQuantum,
		"dynamics":  Dynamics,
		"ablation":  Ablation,
		"tcmthresh": TCMThreshSweep,
		"prefetch":  Prefetch,
		"energy":    Energy,
		"parbs":     PARBSBaseline,
		"mapping":   Mapping,
		"llc":       LLC,
		"timing":    Timing,
	}
}

// Names returns the registry keys in a stable order.
func Names() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for k := range reg {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Write renders an outcome as text: title, table, summary lines.
func (out Outcome) Write(w io.Writer) error {
	return out.write(w, false)
}

// WriteMarkdown renders the outcome as a markdown section.
func (out Outcome) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s \u2014 %s\n\n", out.ID, out.Title); err != nil {
		return err
	}
	if out.Table != nil {
		if err := out.Table.WriteMarkdown(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, s := range out.Summary {
		if _, err := fmt.Fprintf(w, "- %s\n", s); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WritePlot renders the outcome with bar charts for sweep experiments.
func (out Outcome) WritePlot(w io.Writer) error {
	return out.write(w, true)
}

func (out Outcome) write(w io.Writer, plot bool) error {
	if _, err := fmt.Fprintf(w, "== %s — %s ==\n", out.ID, out.Title); err != nil {
		return err
	}
	if out.Table != nil {
		if err := out.Table.WriteText(w); err != nil {
			return err
		}
	}
	if plot && len(out.Bars) > 0 {
		labels := make([]string, len(out.Bars))
		ws := make([]float64, len(out.Bars))
		ms := make([]float64, len(out.Bars))
		for i, b := range out.Bars {
			labels[i], ws[i], ms[i] = b.Label, b.WS, b.MS
		}
		if _, err := fmt.Fprint(w, stats.BarChart("mean weighted speedup (higher = better)", labels, ws, 40)); err != nil {
			return err
		}
		if _, err := fmt.Fprint(w, stats.BarChart("mean maximum slowdown (lower = better)", labels, ms, 40)); err != nil {
			return err
		}
	}
	for _, s := range out.Summary {
		if _, err := fmt.Fprintf(w, "  » %s\n", s); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
