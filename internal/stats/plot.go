package stats

import (
	"fmt"
	"math"
	"strings"
)

// Terminal plotting: the experiment harness renders its "figures" as ASCII
// bar charts and sparklines so `dbpsweep -plot` output resembles the
// paper's figures without leaving the terminal.

// BarChart renders labelled values as horizontal bars scaled to width
// characters. Values must be non-negative; the scale is the maximum value.
func BarChart(title string, labels []string, values []float64, width int) string {
	if width < 8 {
		width = 8
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	n := len(labels)
	if len(values) < n {
		n = len(values)
	}
	if n == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	maxVal := 0.0
	labelW := 0
	for i := 0; i < n; i++ {
		if values[i] > maxVal {
			maxVal = values[i]
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	for i := 0; i < n; i++ {
		bar := 0
		if maxVal > 0 && values[i] > 0 {
			bar = int(math.Round(values[i] / maxVal * float64(width)))
		}
		fmt.Fprintf(&b, "  %-*s %s %.3f\n", labelW, labels[i], strings.Repeat("█", bar), values[i])
	}
	return b.String()
}

// sparkGlyphs are the eight block-height glyphs used by Sparkline.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a value sequence as one line of block glyphs, scaled
// between the series' min and max.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkGlyphs)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkGlyphs) {
			idx = len(sparkGlyphs) - 1
		}
		b.WriteRune(sparkGlyphs[idx])
	}
	return b.String()
}

// SeriesChart renders several named series as aligned sparklines with their
// ranges.
func SeriesChart(title string, names []string, series [][]float64) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	labelW := 0
	for _, n := range names {
		if len(n) > labelW {
			labelW = len(n)
		}
	}
	for i, n := range names {
		if i >= len(series) || len(series[i]) == 0 {
			continue
		}
		lo, hi := series[i][0], series[i][0]
		for _, v := range series[i][1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		fmt.Fprintf(&b, "  %-*s %s  [%.2f … %.2f]\n", labelW, n, Sparkline(series[i]), lo, hi)
	}
	return b.String()
}
