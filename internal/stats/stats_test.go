package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCounterSet(t *testing.T) {
	s := NewSet()
	s.Get("reads").Add(3)
	s.Get("reads").Inc()
	s.Get("writes").Inc()
	if got := s.Value("reads"); got != 4 {
		t.Errorf("reads = %d, want 4", got)
	}
	if got := s.Value("writes"); got != 1 {
		t.Errorf("writes = %d, want 1", got)
	}
	if got := s.Value("absent"); got != 0 {
		t.Errorf("absent = %d, want 0", got)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "reads" || names[1] != "writes" {
		t.Errorf("Names() = %v, want [reads writes]", names)
	}
	s.Reset()
	if got := s.Value("reads"); got != 0 {
		t.Errorf("after Reset reads = %d, want 0", got)
	}
}

func TestRatioAndPerKilo(t *testing.T) {
	if got := Ratio(3, 4); !almostEqual(got, 0.75, 1e-12) {
		t.Errorf("Ratio(3,4) = %g", got)
	}
	if got := Ratio(3, 0); got != 0 {
		t.Errorf("Ratio(3,0) = %g, want 0", got)
	}
	if got := PerKilo(5, 1000); !almostEqual(got, 5, 1e-12) {
		t.Errorf("PerKilo(5,1000) = %g, want 5", got)
	}
	if got := PerKilo(5, 0); got != 0 {
		t.Errorf("PerKilo(5,0) = %g, want 0", got)
	}
}

func TestMeans(t *testing.T) {
	xs := []float64{1, 2, 4}
	if got := Mean(xs); !almostEqual(got, 7.0/3, 1e-12) {
		t.Errorf("Mean = %g", got)
	}
	if got := GeoMean(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("GeoMean = %g, want 2", got)
	}
	if got := HarmonicMean(xs); !almostEqual(got, 3/(1+0.5+0.25), 1e-12) {
		t.Errorf("HarmonicMean = %g", got)
	}
	if got := GeoMean([]float64{1, 0, 2}); got != 0 {
		t.Errorf("GeoMean with zero = %g, want 0", got)
	}
	if got := HarmonicMean(nil); got != 0 {
		t.Errorf("HarmonicMean(nil) = %g, want 0", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g, want 0", got)
	}
}

func TestMeanOrderingProperty(t *testing.T) {
	// For positive inputs: harmonic mean ≤ geometric mean ≤ arithmetic mean.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			v := math.Abs(x)
			if v > 1e-6 && v < 1e6 && !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		h, g, a := HarmonicMean(xs), GeoMean(xs), Mean(xs)
		return h <= g*(1+1e-9) && g <= a*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %g, want 2", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("Median even = %g, want 2.5", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %g, want 0", got)
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated input: %v", in)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	for _, x := range []float64{0.5, 1.5, 3, 10} {
		h.Observe(x)
	}
	if h.N != 4 {
		t.Fatalf("N = %d, want 4", h.N)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 2 {
		t.Errorf("Counts = %v, want [1 1 2]", h.Counts)
	}
	if h.Min != 0.5 || h.Max != 10 {
		t.Errorf("Min/Max = %g/%g", h.Min, h.Max)
	}
	if got := h.MeanValue(); !almostEqual(got, 15.0/4, 1e-12) {
		t.Errorf("MeanValue = %g", got)
	}
	if s := h.String(); !strings.Contains(s, "n=4") {
		t.Errorf("String = %q", s)
	}
	if s := NewHistogram(nil).String(); s != "hist{empty}" {
		t.Errorf("empty String = %q", s)
	}
}

func TestComputeMetrics(t *testing.T) {
	threads := []ThreadPerf{
		{Name: "a", IPCShared: 0.5, IPCAlone: 1.0},
		{Name: "b", IPCShared: 0.8, IPCAlone: 1.0},
	}
	m, err := ComputeMetrics(threads)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.WeightedSpeedup, 1.3, 1e-12) {
		t.Errorf("WS = %g, want 1.3", m.WeightedSpeedup)
	}
	if !almostEqual(m.MaxSlowdown, 2.0, 1e-12) {
		t.Errorf("MS = %g, want 2.0", m.MaxSlowdown)
	}
	wantHS := 2.0 / (2.0 + 1.25)
	if !almostEqual(m.HarmonicSpeedup, wantHS, 1e-12) {
		t.Errorf("HS = %g, want %g", m.HarmonicSpeedup, wantHS)
	}
}

func TestComputeMetricsErrors(t *testing.T) {
	if _, err := ComputeMetrics(nil); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := ComputeMetrics([]ThreadPerf{{Name: "a", IPCShared: 1, IPCAlone: 0}}); err == nil {
		t.Error("expected error for zero alone IPC")
	}
	if _, err := ComputeMetrics([]ThreadPerf{{Name: "a", IPCShared: 0, IPCAlone: 1}}); err == nil {
		t.Error("expected error for zero shared IPC")
	}
}

func TestMetricsDelta(t *testing.T) {
	base := SystemMetrics{WeightedSpeedup: 2.0, MaxSlowdown: 4.0}
	cur := SystemMetrics{WeightedSpeedup: 2.2, MaxSlowdown: 3.0}
	tp, fp := cur.Delta(base)
	if !almostEqual(tp, 10, 1e-9) {
		t.Errorf("throughput delta = %g, want 10", tp)
	}
	if !almostEqual(fp, 25, 1e-9) {
		t.Errorf("fairness delta = %g, want 25", fp)
	}
	tp, fp = cur.Delta(SystemMetrics{})
	if tp != 0 || fp != 0 {
		t.Errorf("delta vs zero baseline = %g,%g, want 0,0", tp, fp)
	}
}

func TestMetricsWSBounds(t *testing.T) {
	// Property: weighted speedup of N threads lies in (0, N] when no thread
	// runs faster shared than alone, and MaxSlowdown ≥ 1.
	f := func(seeds []uint8) bool {
		if len(seeds) == 0 {
			return true
		}
		threads := make([]ThreadPerf, 0, len(seeds))
		for i, s := range seeds {
			alone := 0.5 + float64(s)/64.0
			shared := alone * (0.1 + 0.9*float64(s%13)/13.0)
			if shared <= 0 {
				shared = alone * 0.05
			}
			threads = append(threads, ThreadPerf{Name: string(rune('a' + i%26)), IPCShared: shared, IPCAlone: alone})
		}
		m, err := ComputeMetrics(threads)
		if err != nil {
			return false
		}
		return m.WeightedSpeedup > 0 && m.WeightedSpeedup <= float64(len(threads))+1e-9 &&
			m.MaxSlowdown >= 1-1e-9 && m.HarmonicSpeedup > 0 && m.HarmonicSpeedup <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanAcross(t *testing.T) {
	runs := []SystemMetrics{
		{WeightedSpeedup: 2, HarmonicSpeedup: 0.5, MaxSlowdown: 3},
		{WeightedSpeedup: 4, HarmonicSpeedup: 0.7, MaxSlowdown: 5},
	}
	m := MeanAcross(runs)
	if m.WeightedSpeedup != 3 || m.MaxSlowdown != 4 || !almostEqual(m.HarmonicSpeedup, 0.6, 1e-12) {
		t.Errorf("MeanAcross = %+v", m)
	}
	if z := MeanAcross(nil); z.WeightedSpeedup != 0 {
		t.Errorf("MeanAcross(nil) = %+v", z)
	}
}

func TestSortThreadsBySlowdown(t *testing.T) {
	m := SystemMetrics{Threads: []ThreadPerf{
		{Name: "mild", IPCShared: 0.9, IPCAlone: 1},
		{Name: "bad", IPCShared: 0.2, IPCAlone: 1},
	}}
	m.SortThreadsBySlowdown()
	if m.Threads[0].Name != "bad" {
		t.Errorf("worst-first sort failed: %v", m.Threads)
	}
}

func TestMetricsStrings(t *testing.T) {
	threads := []ThreadPerf{{Name: "a", IPCShared: 0.5, IPCAlone: 1.0}}
	m, err := ComputeMetrics(threads)
	if err != nil {
		t.Fatal(err)
	}
	if s := m.String(); !strings.Contains(s, "WS=") {
		t.Errorf("String = %q", s)
	}
	tab := m.Table()
	if !strings.Contains(tab, "a") || !strings.Contains(tab, "system") {
		t.Errorf("Table = %q", tab)
	}
}

func TestTableWriter(t *testing.T) {
	tw := NewTable("workload", "frfcfs", "dbp")
	tw.AddRow("W8-1", "3.1", "3.3")
	tw.AddFloats("W8-2", "%.2f", 2.5, 2.75)
	if tw.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tw.NumRows())
	}
	txt := tw.Text()
	for _, want := range []string{"workload", "W8-1", "2.75", "---"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Text missing %q in:\n%s", want, txt)
		}
	}
	csv := tw.CSV()
	if !strings.Contains(csv, "W8-1,3.1,3.3") {
		t.Errorf("CSV = %q", csv)
	}
}

func TestTableWriterCSVQuoting(t *testing.T) {
	tw := NewTable("a", "b")
	tw.AddRow("x,y", "plain")
	csv := tw.CSV()
	if !strings.Contains(csv, "\"x,y\",plain") {
		t.Errorf("CSV quoting failed: %q", csv)
	}
}

func TestThreadPerfZeroDivision(t *testing.T) {
	var tp ThreadPerf
	if tp.Speedup() != 0 || tp.Slowdown() != 0 {
		t.Error("zero ThreadPerf should yield zero speedup/slowdown")
	}
}

func TestJainIndex(t *testing.T) {
	// Perfect equality: index 1.
	eq := SystemMetrics{Threads: []ThreadPerf{
		{Name: "a", IPCShared: 0.5, IPCAlone: 1},
		{Name: "b", IPCShared: 1.0, IPCAlone: 2},
	}}
	if got := eq.JainIndex(); !almostEqual(got, 1, 1e-12) {
		t.Errorf("equal speedups Jain = %g, want 1", got)
	}
	// Unequal treatment lowers the index.
	uneq := SystemMetrics{Threads: []ThreadPerf{
		{Name: "a", IPCShared: 0.9, IPCAlone: 1},
		{Name: "b", IPCShared: 0.1, IPCAlone: 1},
	}}
	if got := uneq.JainIndex(); got >= 0.99 || got <= 0 {
		t.Errorf("unequal Jain = %g, want in (0, 0.99)", got)
	}
	if (SystemMetrics{}).JainIndex() != 0 {
		t.Error("empty metrics Jain should be 0")
	}
	zero := SystemMetrics{Threads: []ThreadPerf{{Name: "a"}}}
	if zero.JainIndex() != 0 {
		t.Error("all-zero speedups Jain should be 0")
	}
}

func TestJainIndexBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var threads []ThreadPerf
		for i, r := range raw {
			threads = append(threads, ThreadPerf{
				Name:      string(rune('a' + i%26)),
				IPCShared: 0.01 + float64(r)/64.0,
				IPCAlone:  1,
			})
		}
		j := SystemMetrics{Threads: threads}.JainIndex()
		return j > 0 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("title", []string{"a", "longer"}, []float64{1, 2}, 10)
	if !strings.Contains(out, "title") || !strings.Contains(out, "longer") {
		t.Errorf("chart = %q", out)
	}
	// The max value gets the full width; half value gets about half.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	aBars := strings.Count(lines[1], "█")
	bBars := strings.Count(lines[2], "█")
	if bBars != 10 || aBars != 5 {
		t.Errorf("bar widths = %d and %d, want 5 and 10", aBars, bBars)
	}
	if got := BarChart("", nil, nil, 0); !strings.Contains(got, "no data") {
		t.Errorf("empty chart = %q", got)
	}
	// Zero values: no bars, no panic.
	if got := BarChart("", []string{"z"}, []float64{0}, 10); strings.Contains(got, "█") {
		t.Errorf("zero value drew a bar: %q", got)
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	got := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(got)) != 4 {
		t.Fatalf("sparkline length = %d", len([]rune(got)))
	}
	runes := []rune(got)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("sparkline extremes wrong: %q", got)
	}
	// Flat series renders the lowest glyph everywhere.
	flat := []rune(Sparkline([]float64{5, 5, 5}))
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat series rendered %q", string(flat))
			break
		}
	}
}

func TestSeriesChart(t *testing.T) {
	out := SeriesChart("dyn", []string{"x", "y"}, [][]float64{{1, 2, 3}, {3, 1}})
	if !strings.Contains(out, "dyn") || !strings.Contains(out, "[1.00 … 3.00]") {
		t.Errorf("series chart = %q", out)
	}
	// Mismatched/empty series are skipped without panic.
	out = SeriesChart("", []string{"a", "b"}, [][]float64{{1}})
	if strings.Contains(out, "b ") && strings.Contains(out, "…") && strings.Count(out, "\n") > 1 {
		t.Errorf("missing series rendered: %q", out)
	}
}
