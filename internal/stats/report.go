package stats

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table building: the experiment harness prints paper-style rows (one row per
// workload or configuration, one column per policy). TableWriter accumulates
// cells and renders either aligned text or CSV.

// TableWriter accumulates a rectangular table of string cells.
type TableWriter struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column header.
func NewTable(header ...string) *TableWriter {
	return &TableWriter{header: header}
}

// AddRow appends one row. Cells beyond the header width are kept; short rows
// are padded when rendering.
func (t *TableWriter) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddFloats appends a row with a string label followed by formatted floats.
func (t *TableWriter) AddFloats(label string, format string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf(format, v))
	}
	t.rows = append(t.rows, cells)
}

// NumRows reports how many data rows the table holds.
func (t *TableWriter) NumRows() int { return len(t.rows) }

func (t *TableWriter) widths() []int {
	w := make([]int, len(t.header))
	grow := func(cells []string) {
		for i, c := range cells {
			if i >= len(w) {
				w = append(w, 0)
			}
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	grow(t.header)
	for _, r := range t.rows {
		grow(r)
	}
	return w
}

// WriteText renders the table as aligned plain text.
func (t *TableWriter) WriteText(w io.Writer) error {
	widths := t.widths()
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, width := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", width, c)
			} else {
				fmt.Fprintf(&b, "  %*s", width, c)
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(t.header); err != nil {
		return err
	}
	var rule []string
	for _, width := range widths {
		rule = append(rule, strings.Repeat("-", width))
	}
	if err := writeRow(rule); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as RFC-4180-ish CSV (quotes only when needed).
func (t *TableWriter) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = strconv.Quote(c)
			}
			out[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := writeRow(t.header); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// Text returns the aligned-text rendering as a string.
func (t *TableWriter) Text() string {
	var b strings.Builder
	_ = t.WriteText(&b)
	return b.String()
}

// CSV returns the CSV rendering as a string.
func (t *TableWriter) CSV() string {
	var b strings.Builder
	_ = t.WriteCSV(&b)
	return b.String()
}

// WriteMarkdown renders the table as a GitHub-flavoured markdown table.
func (t *TableWriter) WriteMarkdown(w io.Writer) error {
	width := len(t.header)
	for _, r := range t.rows {
		if len(r) > width {
			width = len(r)
		}
	}
	writeRow := func(cells []string) error {
		out := make([]string, width)
		for i := 0; i < width; i++ {
			if i < len(cells) {
				out[i] = strings.ReplaceAll(cells[i], "|", "\\|")
			}
		}
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(out, " | "))
		return err
	}
	if err := writeRow(t.header); err != nil {
		return err
	}
	rule := make([]string, width)
	for i := range rule {
		rule[i] = "---"
	}
	if err := writeRow(rule); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// Markdown returns the markdown rendering as a string.
func (t *TableWriter) Markdown() string {
	var b strings.Builder
	_ = t.WriteMarkdown(&b)
	return b.String()
}
