// Package stats provides counters, metric computation and report formatting
// for the DBP simulator.
//
// The package is deliberately free of simulator dependencies: it consumes
// plain numbers (instruction counts, cycle counts, per-thread IPCs) and
// produces the throughput and fairness metrics used throughout the paper:
// weighted speedup, harmonic speedup and maximum slowdown.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Counter is a monotonically increasing event counter with a name.
type Counter struct {
	Name  string
	Value uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.Value += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Value++ }

// Set is a named collection of counters, created on first use.
type Set struct {
	counters map[string]*Counter
	order    []string
}

// NewSet returns an empty counter set.
func NewSet() *Set {
	return &Set{counters: make(map[string]*Counter)}
}

// Get returns the counter with the given name, creating it if needed.
func (s *Set) Get(name string) *Counter {
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := &Counter{Name: name}
	s.counters[name] = c
	s.order = append(s.order, name)
	return c
}

// Value returns the current value of the named counter (0 if absent).
func (s *Set) Value(name string) uint64 {
	if c, ok := s.counters[name]; ok {
		return c.Value
	}
	return 0
}

// Names returns counter names in creation order.
func (s *Set) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Reset zeroes every counter but keeps the set's structure.
func (s *Set) Reset() {
	for _, c := range s.counters {
		c.Value = 0
	}
}

// Ratio returns a/b as float64, or 0 when b is zero.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// PerKilo returns events per 1000 units, e.g. misses per kilo-instruction.
func PerKilo(events, units uint64) float64 {
	if units == 0 {
		return 0
	}
	return 1000 * float64(events) / float64(units)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 for empty input or any
// non-positive element).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// HarmonicMean returns the harmonic mean of xs (0 for empty input or any
// non-positive element).
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var invSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		invSum += 1 / x
	}
	return float64(len(xs)) / invSum
}

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Histogram is a fixed-bucket histogram over float64 samples.
type Histogram struct {
	// Bounds are the inclusive upper bounds of each bucket except the last,
	// which is open-ended. len(Counts) == len(Bounds)+1.
	Bounds []float64
	Counts []uint64
	N      uint64
	Sum    float64
	Min    float64
	Max    float64
}

// NewHistogram builds a histogram with the given ascending bucket bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{
		Bounds: b,
		Counts: make([]uint64, len(b)+1),
		Min:    math.Inf(1),
		Max:    math.Inf(-1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	i := sort.SearchFloat64s(h.Bounds, x)
	h.Counts[i]++
	h.N++
	h.Sum += x
	if x < h.Min {
		h.Min = x
	}
	if x > h.Max {
		h.Max = x
	}
}

// MeanValue returns the mean of all observed samples (0 if none).
func (h *Histogram) MeanValue() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// String renders a compact one-line summary.
func (h *Histogram) String() string {
	if h.N == 0 {
		return "hist{empty}"
	}
	return fmt.Sprintf("hist{n=%d mean=%.2f min=%.2f max=%.2f}", h.N, h.MeanValue(), h.Min, h.Max)
}
