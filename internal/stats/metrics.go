package stats

import (
	"fmt"
	"sort"
	"strings"
)

// ThreadPerf holds the per-thread performance of one multi-programmed run,
// paired with the thread's alone-run baseline.
type ThreadPerf struct {
	// Name identifies the benchmark the thread runs.
	Name string
	// IPCShared is the thread's instructions per cycle in the shared run.
	IPCShared float64
	// IPCAlone is the thread's IPC when running alone on the same system.
	IPCAlone float64
}

// Speedup returns IPCShared/IPCAlone, the thread's normalized performance.
func (t ThreadPerf) Speedup() float64 {
	if t.IPCAlone == 0 {
		return 0
	}
	return t.IPCShared / t.IPCAlone
}

// Slowdown returns IPCAlone/IPCShared, the thread's interference-induced
// slowdown (≥1 in practice).
func (t ThreadPerf) Slowdown() float64 {
	if t.IPCShared == 0 {
		return 0
	}
	return t.IPCAlone / t.IPCShared
}

// SystemMetrics summarises a multi-programmed run using the paper's metrics.
type SystemMetrics struct {
	// WeightedSpeedup is Σ_i IPCshared_i/IPCalone_i — system throughput.
	WeightedSpeedup float64
	// HarmonicSpeedup is N / Σ_i IPCalone_i/IPCshared_i — balance of
	// throughput and fairness.
	HarmonicSpeedup float64
	// MaxSlowdown is max_i IPCalone_i/IPCshared_i — system unfairness
	// (lower is better).
	MaxSlowdown float64
	// Threads holds the per-thread detail the aggregate was computed from.
	Threads []ThreadPerf
}

// ComputeMetrics derives the paper's system metrics from per-thread
// performance. It returns an error when the input is empty or a thread has a
// non-positive baseline, since every metric would be meaningless.
func ComputeMetrics(threads []ThreadPerf) (SystemMetrics, error) {
	if len(threads) == 0 {
		return SystemMetrics{}, fmt.Errorf("stats: no threads")
	}
	m := SystemMetrics{Threads: append([]ThreadPerf(nil), threads...)}
	var slowdownSum float64
	for _, t := range threads {
		if t.IPCAlone <= 0 {
			return SystemMetrics{}, fmt.Errorf("stats: thread %q has non-positive alone IPC %g", t.Name, t.IPCAlone)
		}
		if t.IPCShared <= 0 {
			return SystemMetrics{}, fmt.Errorf("stats: thread %q has non-positive shared IPC %g", t.Name, t.IPCShared)
		}
		sp := t.Speedup()
		sd := t.Slowdown()
		m.WeightedSpeedup += sp
		slowdownSum += sd
		if sd > m.MaxSlowdown {
			m.MaxSlowdown = sd
		}
	}
	m.HarmonicSpeedup = float64(len(threads)) / slowdownSum
	return m, nil
}

// Delta expresses the improvement of this run over a baseline in the paper's
// vocabulary: positive throughput delta = higher weighted speedup, positive
// fairness delta = lower maximum slowdown.
func (m SystemMetrics) Delta(baseline SystemMetrics) (throughputPct, fairnessPct float64) {
	if baseline.WeightedSpeedup > 0 {
		throughputPct = 100 * (m.WeightedSpeedup - baseline.WeightedSpeedup) / baseline.WeightedSpeedup
	}
	if baseline.MaxSlowdown > 0 {
		fairnessPct = 100 * (baseline.MaxSlowdown - m.MaxSlowdown) / baseline.MaxSlowdown
	}
	return throughputPct, fairnessPct
}

// String renders the aggregate metrics compactly.
func (m SystemMetrics) String() string {
	return fmt.Sprintf("WS=%.3f HS=%.3f MS=%.3f", m.WeightedSpeedup, m.HarmonicSpeedup, m.MaxSlowdown)
}

// Table renders per-thread detail as an aligned text table.
func (m SystemMetrics) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %10s %9s %9s\n", "thread", "ipc.shared", "ipc.alone", "speedup", "slowdown")
	for _, t := range m.Threads {
		fmt.Fprintf(&b, "%-16s %10.4f %10.4f %9.3f %9.3f\n", t.Name, t.IPCShared, t.IPCAlone, t.Speedup(), t.Slowdown())
	}
	fmt.Fprintf(&b, "%-16s WS=%.3f HS=%.3f MS=%.3f\n", "system", m.WeightedSpeedup, m.HarmonicSpeedup, m.MaxSlowdown)
	return b.String()
}

// MeanAcross averages metrics over several workload runs, as the paper does
// when reporting suite-wide results. Maximum slowdown is averaged across
// workloads (each workload contributes its own max).
func MeanAcross(runs []SystemMetrics) SystemMetrics {
	if len(runs) == 0 {
		return SystemMetrics{}
	}
	var out SystemMetrics
	for _, r := range runs {
		out.WeightedSpeedup += r.WeightedSpeedup
		out.HarmonicSpeedup += r.HarmonicSpeedup
		out.MaxSlowdown += r.MaxSlowdown
	}
	n := float64(len(runs))
	out.WeightedSpeedup /= n
	out.HarmonicSpeedup /= n
	out.MaxSlowdown /= n
	return out
}

// JainIndex returns Jain's fairness index over the per-thread speedups:
// (Σx)² / (n·Σx²), in (0, 1] where 1 is perfectly equal treatment. An
// additional fairness view some partitioning papers report next to maximum
// slowdown.
func (m SystemMetrics) JainIndex() float64 {
	if len(m.Threads) == 0 {
		return 0
	}
	var sum, sq float64
	for _, t := range m.Threads {
		x := t.Speedup()
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(m.Threads)) * sq)
}

// SortThreadsBySlowdown orders the per-thread detail worst-first, for
// reporting which thread bounds the system's unfairness.
func (m *SystemMetrics) SortThreadsBySlowdown() {
	sort.Slice(m.Threads, func(i, j int) bool {
		return m.Threads[i].Slowdown() > m.Threads[j].Slowdown()
	})
}
