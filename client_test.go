package dbpsim

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler fails the first n requests with status/body, then succeeds.
func flakyHandler(n int, status int, body string) (http.HandlerFunc, *atomic.Int64) {
	var calls atomic.Int64
	return func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(n) {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(status)
			fmt.Fprint(w, body)
			return
		}
		w.Header().Set("X-Cache", "miss")
		fmt.Fprint(w, `{"schema_version": 1}`)
	}, &calls
}

func TestClientRetriesBackpressure(t *testing.T) {
	h, calls := flakyHandler(2, http.StatusTooManyRequests,
		`{"error": {"code": "queue_full", "message": "full", "retryable": true}}`)
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
	res, err := c.Run(context.Background(), RunRequest{Mix: "W8-M1"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want 3 (two rejections + success)", calls.Load())
	}
	if res.Cache != "miss" || len(res.Ledger) == 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestClientStopsOnPermanentError(t *testing.T) {
	h, calls := flakyHandler(99, http.StatusBadRequest,
		`{"error": {"code": "bad_request", "message": "unknown mix", "retryable": false}}`)
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, BaseBackoff: time.Millisecond}
	_, err := c.Run(context.Background(), RunRequest{Mix: "W99-X"})
	if err == nil {
		t.Fatal("permanent error retried into success?")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "bad_request" {
		t.Errorf("error %v does not wrap the server's APIError", err)
	}
	if calls.Load() != 1 {
		t.Errorf("server saw %d calls, want 1 (no retry on retryable=false)", calls.Load())
	}
}

func TestClientGivesUpAfterMaxAttempts(t *testing.T) {
	h, calls := flakyHandler(99, http.StatusServiceUnavailable,
		`{"error": {"code": "draining", "message": "bye", "retryable": true}}`)
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	_, err := c.Run(context.Background(), RunRequest{Mix: "W8-M1"})
	if err == nil {
		t.Fatal("exhausted retries reported success")
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want MaxAttempts=3", calls.Load())
	}
}

func TestClientHonoursContext(t *testing.T) {
	h, _ := flakyHandler(99, http.StatusTooManyRequests,
		`{"error": {"code": "queue_full", "message": "full", "retryable": true}}`)
	ts := httptest.NewServer(h)
	defer ts.Close()

	// Long backoffs + short context: cancellation must win during the sleep.
	c := &Client{BaseURL: ts.URL, BaseBackoff: time.Minute, MaxBackoff: time.Minute}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Run(ctx, RunRequest{Mix: "W8-M1"})
	if err == nil {
		t.Fatal("canceled run reported success")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not wrap the context deadline", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("client ignored context during backoff sleep")
	}
}

func TestClientHonoursRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var gap time.Duration
	var last time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		if n := calls.Add(1); n == 1 {
			last = now
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error": {"code": "queue_full", "message": "full", "retryable": true}}`)
			return
		}
		gap = now.Sub(last)
		fmt.Fprint(w, `{"schema_version": 1}`)
	}))
	defer ts.Close()

	// Nominal backoff is 1ms; the server's Retry-After: 1 must stretch the
	// wait to at least a second.
	c := &Client{BaseURL: ts.URL, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	if _, err := c.Run(context.Background(), RunRequest{Mix: "W8-M1"}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if gap < time.Second {
		t.Errorf("retry came after %v, want >= 1s per Retry-After", gap)
	}
}

// TestClientHonoursRetryAfterOn503 pins the drain path: a 503 with
// Retry-After (what dbpserved answers while draining, and what a fleet
// coordinator relays when a worker is mid-handoff) must stretch the backoff
// exactly like a 429 does — the hint is honoured per header, not per status.
func TestClientHonoursRetryAfterOn503(t *testing.T) {
	var calls atomic.Int64
	var gap time.Duration
	var last time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		if n := calls.Add(1); n == 1 {
			last = now
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error": {"code": "draining", "message": "server draining", "retryable": true}}`)
			return
		}
		gap = now.Sub(last)
		fmt.Fprint(w, `{"schema_version": 1}`)
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	if _, err := c.Run(context.Background(), RunRequest{Mix: "W8-M1"}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls.Load() != 2 {
		t.Errorf("server saw %d calls, want 2", calls.Load())
	}
	if gap < time.Second {
		t.Errorf("retry after drain came after %v, want >= 1s per Retry-After", gap)
	}
}

// TestClientQuotaExceededPastDeadline: a quota_exceeded refusal whose
// refill lands after the caller's deadline fails immediately — no retry
// loop burning the deadline — and surfaces the typed QuotaError with the
// server's cost estimate. Contrast with queue_full backpressure
// (TestClientRetriesBackpressure), which retries.
func TestClientQuotaExceededPastDeadline(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "3600")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error": {"code": "quota_exceeded", "message": "tenant over budget", "retryable": true,
			"estimate": {"simcycles": 12000, "seconds": 0.0084, "basis": "default"}}}`)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	c := &Client{BaseURL: ts.URL, BaseBackoff: time.Millisecond}
	_, err := c.Run(ctx, RunRequest{Mix: "W8-M1"})
	if err == nil {
		t.Fatal("quota refusal returned success?")
	}
	if calls.Load() != 1 {
		t.Errorf("server saw %d calls, want 1 (refill is past the deadline; retrying is pointless)", calls.Load())
	}
	var qerr *QuotaError
	if !errors.As(err, &qerr) {
		t.Fatalf("error %v is not a *QuotaError", err)
	}
	if qerr.RetryAfter != time.Hour {
		t.Errorf("RetryAfter = %s, want 1h", qerr.RetryAfter)
	}
	if est := qerr.Estimate(); est.SimCycles != 12000 || est.Basis != "default" {
		t.Errorf("estimate = %+v", est)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "quota_exceeded" {
		t.Errorf("APIError not recoverable from %v", err)
	}
}

// TestClientQuotaExceededRetriesWithinDeadline: when the refill fits the
// deadline, quota_exceeded retries like any Retry-After-bearing refusal.
func TestClientQuotaExceededRetriesWithinDeadline(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error": {"code": "quota_exceeded", "message": "tenant over budget", "retryable": true}}`)
			return
		}
		w.Header().Set("X-Cache", "miss")
		fmt.Fprint(w, `{"schema_version": 1}`)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c := &Client{BaseURL: ts.URL, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
	res, err := c.Run(ctx, RunRequest{Mix: "W8-M1"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls.Load() != 2 {
		t.Errorf("server saw %d calls, want 2", calls.Load())
	}
	if res.Cache != "miss" {
		t.Errorf("cache = %q", res.Cache)
	}
}

// TestClientSendsAPIKey: the APIKey field reaches the server as a Bearer
// credential on both Run and Sweep.
func TestClientSendsAPIKey(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("Authorization"))
		fmt.Fprint(w, `{"schema_version": 1}`)
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, APIKey: "sk-test-1"}
	if _, err := c.Run(context.Background(), RunRequest{Mix: "W8-M1"}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got.Load() != "Bearer sk-test-1" {
		t.Errorf("Authorization = %q", got.Load())
	}
}

// TestSweepInterrupted: a stream that tears before its summary line (the
// coordinator died mid-sweep) surfaces as a typed SweepInterruptedError
// carrying how many complete cell lines made it through.
func TestSweepInterrupted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"scheduler":"fr-fcfs","partition":"none","status":"done"}`)
		fmt.Fprintln(w, `{"scheduler":"fr-fcfs","partition":"equal","status":"done"}`)
		// No summary line: the handler returns and the stream just ends.
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL}
	var streamed int
	sum, err := c.Sweep(context.Background(), SweepRequest{Mixes: []string{"W4-M1"}}, func(SweepResult) error {
		streamed++
		return nil
	})
	if sum != nil {
		t.Fatalf("summary = %+v, want nil on an interrupted stream", sum)
	}
	var interrupted *SweepInterruptedError
	if !errors.As(err, &interrupted) {
		t.Fatalf("err = %v (%T), want *SweepInterruptedError", err, err)
	}
	if interrupted.CellsReceived != 2 || streamed != 2 {
		t.Errorf("CellsReceived = %d (callback saw %d), want 2", interrupted.CellsReceived, streamed)
	}
	if interrupted.Err != nil {
		t.Errorf("clean EOF should carry a nil underlying error, got %v", interrupted.Err)
	}
}
