module dbpsim

go 1.22
