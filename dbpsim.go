// Package dbpsim is the public API of the Dynamic Bank Partitioning
// simulator — a reproduction of Xie et al., "Improving system throughput
// and fairness simultaneously in shared memory CMP systems via Dynamic Bank
// Partitioning" (HPCA 2014).
//
// The package re-exports the simulation kernel's entry points. A typical
// session builds a Config, picks a workload Mix, and evaluates one or more
// (scheduler, partition) policy points against alone-run baselines:
//
//	cfg := dbpsim.DefaultConfig(8)
//	exp := dbpsim.NewExperiment(cfg, 200_000, 400_000)
//	mix, _ := dbpsim.MixByName("W8-M1")
//	run, err := exp.RunMix(mix, dbpsim.SchedTCM, dbpsim.PartDBP)
//	fmt.Println(run.Metrics) // WS=… HS=… MS=…
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package dbpsim

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"dbpsim/internal/fleet"
	"dbpsim/internal/obs"
	"dbpsim/internal/scenario"
	"dbpsim/internal/serve"
	"dbpsim/internal/sim"
	"dbpsim/internal/stats"
	"dbpsim/internal/tenant"
	"dbpsim/internal/workload"
)

// Core configuration and simulation types (see internal/sim).
type (
	// Config describes a complete simulated system.
	Config = sim.Config
	// Bench pairs a benchmark name with its trace generator.
	Bench = sim.Bench
	// System is one assembled simulated machine.
	System = sim.System
	// Result summarises one simulation run.
	Result = sim.Result
	// ThreadResult is one thread's measured behaviour.
	ThreadResult = sim.ThreadResult
	// Experiment evaluates mixes against cached alone-run baselines.
	Experiment = sim.Experiment
	// MixRun is the outcome of one policy on one mix.
	MixRun = sim.MixRun
	// PolicyPoint names one (scheduler, partition) combination.
	PolicyPoint = sim.PolicyPoint
	// SchedulerKind selects the memory request scheduler.
	SchedulerKind = sim.SchedulerKind
	// PartitionKind selects the bank-partitioning policy.
	PartitionKind = sim.PartitionKind
	// Checkpointer configures periodic snapshot emission during a run
	// and/or resume from an earlier snapshot blob.
	Checkpointer = sim.Checkpointer
	// RestoreError is the structured failure a corrupt, truncated, or
	// incompatible checkpoint blob produces on restore.
	RestoreError = sim.RestoreError
)

// Workload types (see internal/workload).
type (
	// Spec describes one synthetic benchmark.
	Spec = workload.Spec
	// Mix is one multi-programmed workload.
	Mix = workload.Mix
)

// Scenario types (see internal/scenario): declarative phase-shifting
// workload timelines for stressing the dynamic policies.
type (
	// Scenario is a versioned, seeded timeline of per-thread phases.
	Scenario = scenario.Scenario
	// ScenarioThread is one tenant's phase sequence.
	ScenarioThread = scenario.Thread
	// ScenarioPhase is one segment of a thread's timeline.
	ScenarioPhase = scenario.Phase
)

// LoadScenario reads and validates a scenario JSON file.
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// DecodeScenario parses and validates scenario JSON.
func DecodeScenario(data []byte) (*Scenario, error) { return scenario.Decode(data) }

// ScenarioMix builds the synthetic mix identity a scenario run reports
// under ("scenario:<name>"). It is a label, not a runnable suite mix.
func ScenarioMix(sc *Scenario) Mix { return sim.ScenarioMix(sc) }

// RunScenario evaluates one (scheduler, partition) policy on a
// phase-shifting scenario, with optional recorder and checkpointer.
func RunScenario(ctx context.Context, exp *Experiment, sc *Scenario, scheduler SchedulerKind, partition PartitionKind, rec *Recorder, ck *Checkpointer) (MixRun, error) {
	return exp.RunScenarioCheckpointedContext(ctx, sc, scheduler, partition, rec, ck)
}

// Observability types (see internal/obs).
type (
	// Recorder collects request-lifecycle events and per-epoch series.
	Recorder = obs.Recorder
	// RecorderOptions configures a Recorder.
	RecorderOptions = obs.Options
	// Ledger is the versioned machine-readable record of one run.
	Ledger = obs.Ledger
	// LedgerDiff compares one run ("new") against another ("base").
	LedgerDiff = obs.LedgerDiff
)

// Serving types (see internal/serve): the simulation-as-a-service layer
// behind cmd/dbpserved.
type (
	// Server is the HTTP simulation service: a worker pool with a bounded
	// queue and a content-addressed result cache, answering run ledgers.
	Server = serve.Server
	// ServerOptions configures a Server.
	ServerOptions = serve.Options
	// RunRequest is the POST /v1/runs body.
	RunRequest = serve.RunRequest
	// APIError is the service's structured error schema: every non-2xx
	// response body carries {"error": {code, message, retryable}}.
	APIError = serve.APIError
)

// Tenancy types (see internal/tenant): the multi-tenant layer behind
// dbpserved's -tenants and -bench-ledger flags — per-tenant API keys,
// token-bucket quotas, priority lanes, and the cost model admission
// control charges against.
type (
	// TenantRegistry authenticates API keys against a reloadable tenant
	// config file and hands out per-tenant quota state.
	TenantRegistry = tenant.Registry
	// TenantSpec is one tenant's configuration record (key, weight, lane,
	// quotas).
	TenantSpec = tenant.Spec
	// CostModel predicts a run's cost before it executes, optionally
	// calibrated from a bench ledger.
	CostModel = tenant.CostModel
	// CostEstimate is a predicted run cost: simcycles (the quota unit),
	// wall seconds (the queue-scheduling unit), and the calibration basis.
	CostEstimate = tenant.Estimate
)

// NewTenantRegistry loads a tenant config file and watches it for changes
// (reloads are lazy, throttled, and keep the last good config on error).
func NewTenantRegistry(path string) (*TenantRegistry, error) { return tenant.NewRegistry(path) }

// LoadCostModel calibrates a CostModel from a dbpsim-bench/v1 ledger.
func LoadCostModel(path string) (*CostModel, error) { return tenant.LoadCostModel(path) }

// Fleet types (see internal/fleet): the sharded-cluster layer behind
// dbpserved's -coordinator and -join modes.
type (
	// Coordinator owns fleet placement: the worker registry, the
	// consistent-hash ring over run keys, and the checkpoint mirror that
	// makes in-flight runs migratable.
	Coordinator = fleet.Coordinator
	// CoordinatorOptions configures a Coordinator.
	CoordinatorOptions = fleet.CoordinatorOptions
	// FleetWorker wraps a Server with the fleet surface: peer cache and
	// baseline endpoints, checkpoint staging, and owner-forwarding.
	FleetWorker = fleet.Worker
	// FleetWorkerOptions configures a FleetWorker.
	FleetWorkerOptions = fleet.WorkerOptions
	// SweepRequest is the POST /v1/sweeps body: a workload × scheduler ×
	// partition grid evaluated as one streamed batch.
	SweepRequest = fleet.SweepRequest
	// SweepResult is one NDJSON line of a sweep stream (one grid cell).
	SweepResult = fleet.SweepResult
	// SweepSummary is the final NDJSON line of a sweep stream.
	SweepSummary = fleet.SweepSummary
)

// NewCoordinator builds a fleet coordinator with an empty worker registry.
// With CoordinatorOptions.JournalDir set, it first replays the coordinator
// journal; call Coordinator.Resume once the listener is up to reconcile
// with live workers and restart unfinished sweeps.
func NewCoordinator(opt CoordinatorOptions) (*Coordinator, error) { return fleet.NewCoordinator(opt) }

// NewServer builds a simulation server and starts its worker pool (and, if
// ServerOptions.JournalDir is set, replays the on-disk job journal). It is
// an http.Handler; shut it down with Close to drain in-flight runs.
func NewServer(opt ServerOptions) (*Server, error) { return serve.New(opt) }

// Metric types (see internal/stats).
type (
	// SystemMetrics holds weighted speedup, harmonic speedup and maximum
	// slowdown.
	SystemMetrics = stats.SystemMetrics
	// ThreadPerf pairs shared and alone IPC for one thread.
	ThreadPerf = stats.ThreadPerf
)

// Scheduler kinds.
const (
	SchedFCFS   = sim.SchedFCFS
	SchedFRFCFS = sim.SchedFRFCFS
	SchedTCM    = sim.SchedTCM
	SchedATLAS  = sim.SchedATLAS
	SchedPARBS  = sim.SchedPARBS
	// SchedFRFCFSCap and SchedBLISS are lightweight fairness baselines.
	SchedFRFCFSCap = sim.SchedFRFCFSCap
	SchedBLISS     = sim.SchedBLISS
)

// Partition kinds.
const (
	PartNone  = sim.PartNone
	PartEqual = sim.PartEqual
	PartDBP   = sim.PartDBP
	PartMCP   = sim.PartMCP
	PartFixed = sim.PartFixed
)

// DefaultConfig returns the paper-style baseline system for the given core
// count.
func DefaultConfig(cores int) Config { return sim.DefaultConfig(cores) }

// NewSystem assembles a system running the given benchmarks (one per core).
func NewSystem(cfg Config, benches []Bench) (*System, error) {
	return sim.NewSystem(cfg, benches)
}

// NewExperiment builds an experiment harness with per-core warmup and
// measurement instruction budgets.
func NewExperiment(cfg Config, warmup, measure uint64) *Experiment {
	return sim.NewExperiment(cfg, warmup, measure)
}

// StandardPolicies returns the paper's six comparison points.
func StandardPolicies() []PolicyPoint { return sim.StandardPolicies() }

// LoadConfig reads a JSON configuration file as a partial override of base.
func LoadConfig(path string, base Config) (Config, error) { return sim.LoadConfig(path, base) }

// SaveConfig writes a configuration file as indented JSON.
func SaveConfig(path string, c Config) error { return sim.SaveConfig(path, c) }

// NewRecorder builds an observability recorder; attach it via
// Experiment.Recorder (shared runs only) or System.AttachRecorder.
func NewRecorder(opt RecorderOptions) (*Recorder, error) { return obs.NewRecorder(opt) }

// BuildLedger assembles the machine-readable run ledger for one mix run.
func BuildLedger(tool string, base Config, warmup, measure uint64, run MixRun, rec *Recorder) (Ledger, error) {
	return sim.BuildLedger(tool, base, warmup, measure, run, rec)
}

// SaveLedger writes a run-ledger JSON file.
func SaveLedger(path string, l Ledger) error { return obs.SaveLedger(path, l) }

// LoadLedger reads and validates a run-ledger JSON file.
func LoadLedger(path string) (Ledger, error) { return obs.LoadLedger(path) }

// LoadLedgerBytes parses and validates an in-memory run-ledger document
// (e.g. a dbpserved response body).
func LoadLedgerBytes(data []byte) (Ledger, error) { return obs.UnmarshalLedger(data) }

// DiffLedgers compares two ledgers: how does new improve on base?
func DiffLedgers(base, new Ledger) LedgerDiff { return obs.Diff(base, new) }

// Suite returns the 18-benchmark evaluation suite.
func Suite() []Spec { return workload.Suite() }

// BenchByName finds a benchmark spec by name.
func BenchByName(name string) (Spec, bool) { return workload.ByName(name) }

// Mixes8 returns the default twelve 8-core evaluation mixes.
func Mixes8() []Mix { return workload.Mixes8() }

// Mixes4 returns the 4-core sensitivity mixes.
func Mixes4() []Mix { return workload.Mixes4() }

// Mixes16 returns the 16-core sensitivity mixes.
func Mixes16() []Mix { return workload.Mixes16() }

// MixByName looks a mix up across all defined mix sets.
func MixByName(name string) (Mix, bool) { return workload.MixByName(name) }

// RandomMix builds a reproducible mix of the given core count and category
// (L/M/H heavy share) from a seed.
func RandomMix(name string, cores int, category string, seed int64) (Mix, error) {
	return workload.RandomMix(name, cores, category, seed)
}

// Comparison is the outcome of evaluating several policies on one mix.
type Comparison struct {
	// Mix is the workload evaluated.
	Mix Mix
	// Runs holds one entry per policy, in the order given.
	Runs []MixRun
}

// ComparePolicies evaluates every policy point on the mix, sharing
// alone-run baselines through the experiment's cache.
func ComparePolicies(exp *Experiment, mix Mix, policies []PolicyPoint) (Comparison, error) {
	c := Comparison{Mix: mix}
	for _, p := range policies {
		run, err := exp.RunMix(mix, p.Scheduler, p.Partition)
		if err != nil {
			return Comparison{}, fmt.Errorf("dbpsim: %s on %s: %w", p.Label, mix.Name, err)
		}
		c.Runs = append(c.Runs, run)
	}
	return c, nil
}

// Format renders the comparison as an aligned text table (one row per
// policy).
func (c Comparison) Format(labels []PolicyPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %8s %8s\n", c.Mix.Name, "WS", "HS", "MS")
	for i, run := range c.Runs {
		label := string(run.Scheduler) + "/" + string(run.Partition)
		if i < len(labels) {
			label = labels[i].Label
		}
		fmt.Fprintf(&b, "%-10s %8.3f %8.3f %8.3f\n", label,
			run.Metrics.WeightedSpeedup, run.Metrics.HarmonicSpeedup, run.Metrics.MaxSlowdown)
	}
	return b.String()
}

// SuiteAverage averages one policy's metrics across several comparisons
// (the paper's suite-wide bars). The policy is selected by its index in
// each comparison's run list.
func SuiteAverage(comparisons []Comparison, policyIdx int) SystemMetrics {
	var runs []SystemMetrics
	for _, c := range comparisons {
		if policyIdx < len(c.Runs) {
			runs = append(runs, c.Runs[policyIdx].Metrics)
		}
	}
	return stats.MeanAcross(runs)
}

// SortMixesByCategory orders mixes L, M, H (then by name) for stable report
// layout.
func SortMixesByCategory(mixes []Mix) []Mix {
	out := append([]Mix(nil), mixes...)
	rank := map[string]int{"L": 0, "M": 1, "H": 2}
	sort.Slice(out, func(i, j int) bool {
		if rank[out[i].Category] != rank[out[j].Category] {
			return rank[out[i].Category] < rank[out[j].Category]
		}
		return out[i].Name < out[j].Name
	})
	return out
}
