package main

import (
	"os"
	"path/filepath"
	"testing"

	"dbpsim"
	"dbpsim/internal/tracefile"
)

func TestBuildSourceSynthetic(t *testing.T) {
	n := 10
	gen, label, err := buildSource("milc-like", "", 1, &n)
	if err != nil {
		t.Fatal(err)
	}
	if gen == nil || label == "" {
		t.Fatal("empty source")
	}
	if n != 10 {
		t.Errorf("n changed for synthetic source: %d", n)
	}
	if _, _, err := buildSource("ghost", "", 1, &n); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestBuildSourceReplayClampsN(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.dbpt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := dbpsim.BenchByName("gcc-like")
	if err := tracefile.Record(spec.New(1), 50, f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	n := 1000
	gen, label, err := buildSource("ignored", path, 1, &n)
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Errorf("n not clamped to trace length: %d", n)
	}
	if gen == nil || label == "" {
		t.Error("empty replay source")
	}
	if _, _, err := buildSource("", filepath.Join(t.TempDir(), "absent"), 1, &n); err == nil {
		t.Error("missing file accepted")
	}
}
