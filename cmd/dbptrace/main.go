// Command dbptrace inspects the synthetic trace generators: it dumps raw
// items, summarises a benchmark's instruction mix / footprint / access
// shape (for calibrating new benchmark profiles), and records or replays
// traces in the compact binary format of internal/tracefile.
//
// Usage:
//
//	dbptrace -bench milc-like -n 20              # dump 20 items
//	dbptrace -bench milc-like -n 200000 -stats   # summarise
//	dbptrace -bench milc-like -n 200000 -record milc.dbpt
//	dbptrace -replay milc.dbpt -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"dbpsim"
	"dbpsim/internal/trace"
	"dbpsim/internal/tracefile"
)

func main() {
	var (
		benchName = flag.String("bench", "milc-like", "benchmark name")
		n         = flag.Int("n", 20, "number of trace items")
		seed      = flag.Int64("seed", 1, "generator seed")
		doStats   = flag.Bool("stats", false, "summarise instead of dumping")
		record    = flag.String("record", "", "write the trace to this file and exit")
		replay    = flag.String("replay", "", "read items from this trace file instead of a generator")
	)
	flag.Parse()

	gen, label, err := buildSource(*benchName, *replay, *seed, n)
	if err != nil {
		fatal(err)
	}

	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := tracefile.Record(gen, *n, f); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d items of %s to %s\n", *n, label, *record)
		return
	}

	if !*doStats {
		fmt.Printf("# %s\n", label)
		fmt.Printf("%-6s %-18s %-6s %s\n", "gap", "vaddr", "write", "dependent")
		for i := 0; i < *n; i++ {
			it := gen.Next()
			fmt.Printf("%-6d %#-18x %-6v %v\n", it.Gap, it.Addr, it.IsWrite, it.Dependent)
		}
		return
	}
	printStats(gen, label, *benchName, *replay == "", *n)
}

// buildSource returns the item source: a synthetic generator or a replay.
// When replaying, *n is clamped to the recorded length.
func buildSource(benchName, replay string, seed int64, n *int) (trace.Generator, string, error) {
	if replay != "" {
		f, err := os.Open(replay)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		gen, length, err := tracefile.Generator(f)
		if err != nil {
			return nil, "", err
		}
		if *n > length {
			*n = length
		}
		return gen, fmt.Sprintf("replay of %s (%d items)", replay, length), nil
	}
	spec, ok := dbpsim.BenchByName(benchName)
	if !ok {
		return nil, "", fmt.Errorf("unknown benchmark %q", benchName)
	}
	return spec.New(seed), fmt.Sprintf("%s: %s", spec.Name, spec.Description), nil
}

func printStats(gen trace.Generator, label, benchName string, synthetic bool, n int) {
	var (
		insts, writes, deps uint64
		pages                      = map[uint64]bool{}
		lines                      = map[uint64]bool{}
		minA, maxA          uint64 = ^uint64(0), 0
	)
	for i := 0; i < n; i++ {
		it := gen.Next()
		insts += uint64(it.Gap) + 1
		if it.IsWrite {
			writes++
		}
		if it.Dependent {
			deps++
		}
		pages[it.Addr>>12] = true
		lines[it.Addr>>6] = true
		if it.Addr < minA {
			minA = it.Addr
		}
		if it.Addr > maxA {
			maxA = it.Addr
		}
	}
	fmt.Printf("source           %s\n", label)
	fmt.Printf("items            %d over %d instructions (mem ratio %.3f)\n",
		n, insts, float64(n)/float64(insts))
	fmt.Printf("writes           %.1f%%\n", 100*float64(writes)/float64(n))
	fmt.Printf("dependent        %.1f%%\n", 100*float64(deps)/float64(n))
	fmt.Printf("distinct pages   %d\n", len(pages))
	fmt.Printf("distinct lines   %d\n", len(lines))
	fmt.Printf("address span     %#x – %#x\n", minA, maxA)
	if synthetic {
		if spec, ok := dbpsim.BenchByName(benchName); ok {
			fmt.Printf("target MPKI      %.4g (cold working set %d MiB, burst %d)\n",
				spec.TargetMPKI, spec.ColdBytes>>20, spec.Burst)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dbptrace:", err)
	os.Exit(1)
}
