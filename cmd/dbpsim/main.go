// Command dbpsim runs one workload mix on the simulated CMP under a chosen
// scheduler/partition pair and prints the paper's metrics.
//
// Usage:
//
//	dbpsim -mix W8-M1 -sched tcm -part dbp
//	dbpsim -benchmarks mcf-like,lbm-like,gcc-like,povray-like -part equal
//	dbpsim -mix W8-M1 -part dbp -json run.json -trace-out run.trace.json
//	dbpsim -diff base.json new.json
//	dbpsim -list
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime/pprof"
	"strings"

	"dbpsim"
	"dbpsim/internal/stats"
)

func main() {
	var (
		mixName    = flag.String("mix", "W8-M1", "workload mix name (see -list)")
		benchList  = flag.String("benchmarks", "", "comma-separated benchmark names (overrides -mix)")
		schedName  = flag.String("sched", "frfcfs", "scheduler: fcfs|frfcfs|tcm|atlas")
		partName   = flag.String("part", "none", "partitioning: none|equal|dbp|mcp")
		warmup     = flag.Uint64("warmup", 200_000, "per-core warmup instructions")
		measure    = flag.Uint64("measure", 400_000, "per-core measured instructions")
		seed       = flag.Int64("seed", 1, "random seed")
		banks      = flag.Int("banks", 8, "banks per rank")
		channels   = flag.Int("channels", 2, "memory channels")
		quantum    = flag.Uint64("quantum", 500_000, "DBP repartitioning quantum (CPU cycles)")
		verbose    = flag.Bool("v", false, "print per-thread detail")
		listThings = flag.Bool("list", false, "list benchmarks and mixes, then exit")
		configPath = flag.String("config", "", "JSON config file (partial override of defaults)")
		saveConfig = flag.String("saveconfig", "", "write the effective config to this file and exit")
		latency    = flag.Bool("latency", false, "print per-thread read-latency distributions")
		timeline   = flag.Bool("timeline", false, "print per-thread bank-allocation and IPC sparklines")
		paranoid   = flag.Bool("paranoid", false, "cross-check system invariants during the run")

		jsonOut    = flag.String("json", "", "write the machine-readable run ledger to this file")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace (chrome://tracing / Perfetto) to this file")
		epochsCSV  = flag.String("epochs-csv", "", "write the per-epoch time series as CSV to this file")
		diffMode   = flag.Bool("diff", false, "compare two run ledgers: dbpsim -diff base.json new.json")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
	)
	flag.Parse()

	if *diffMode {
		if err := runDiff(flag.Args(), os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	if *listThings {
		fmt.Println("benchmarks:")
		for _, s := range dbpsim.Suite() {
			fmt.Printf("  %-18s %-7s target MPKI %-5.4g %s\n", s.Name, s.Class, s.TargetMPKI, s.Description)
		}
		fmt.Println("mixes:")
		for _, set := range [][]dbpsim.Mix{dbpsim.Mixes4(), dbpsim.Mixes8(), dbpsim.Mixes16()} {
			for _, m := range set {
				fmt.Printf("  %-8s (%s) %s\n", m.Name, m.Category, strings.Join(m.Members, ", "))
			}
		}
		return
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "dbpsim: pprof:", err)
			}
		}()
	}

	mix, err := resolveMix(*mixName, *benchList)
	if err != nil {
		fatal(err)
	}
	cfg := dbpsim.DefaultConfig(mix.Cores())
	cfg.Seed = *seed
	cfg.Geometry.BanksPerRank = *banks
	cfg.Geometry.Channels = *channels
	cfg.DBP.QuantumCPUCycles = *quantum
	if *configPath != "" {
		loaded, err := dbpsim.LoadConfig(*configPath, cfg)
		if err != nil {
			fatal(err)
		}
		cfg = loaded
		cfg.Cores = mix.Cores() // the mix decides the core count
	}
	cfg.RecordLatencyHistograms = *latency
	cfg.RecordTimeline = *timeline
	cfg.Paranoid = *paranoid
	if *saveConfig != "" {
		if err := dbpsim.SaveConfig(*saveConfig, cfg); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *saveConfig)
		return
	}

	// Observability: one recorder feeds the ledger's epoch series, the
	// Chrome trace and the epoch CSV; per-request spans are captured only
	// when the trace asks for them.
	var rec *dbpsim.Recorder
	if *jsonOut != "" || *traceOut != "" || *epochsCSV != "" {
		rec, err = dbpsim.NewRecorder(dbpsim.RecorderOptions{
			NumThreads: mix.Cores(),
			NumBanks:   cfg.Geometry.NumColors(),
			Spans:      *traceOut != "",
		})
		if err != nil {
			fatal(err)
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	exp := dbpsim.NewExperiment(cfg, *warmup, *measure)
	exp.Recorder = rec
	run, err := exp.RunMix(mix, dbpsim.SchedulerKind(*schedName), dbpsim.PartitionKind(*partName))
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s under %s/%s: %s\n", mix.Name, *schedName, *partName, run.Metrics)
	if *jsonOut != "" {
		led, err := dbpsim.BuildLedger("dbpsim", cfg, *warmup, *measure, run, rec)
		if err != nil {
			fatal(err)
		}
		if err := dbpsim.SaveLedger(*jsonOut, led); err != nil {
			fatal(err)
		}
		fmt.Println("wrote ledger", *jsonOut)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote trace", *traceOut)
	}
	if *epochsCSV != "" {
		f, err := os.Create(*epochsCSV)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteEpochCSV(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote epochs", *epochsCSV)
	}
	if *latency {
		fmt.Println("read latency (memory cycles):")
		for i, h := range run.Result.ReadLatency {
			if h == nil || h.N == 0 {
				continue
			}
			fmt.Printf("  %-18s mean=%-7.1f min=%-6.0f max=%-7.0f n=%d\n",
				run.Result.Threads[i].Name, h.MeanValue(), h.Min, h.Max, h.N)
		}
	}
	if *timeline && len(run.Result.Timeline) > 0 {
		names := make([]string, len(run.Result.Threads))
		banks := make([][]float64, len(run.Result.Threads))
		ipcs := make([][]float64, len(run.Result.Threads))
		for _, p := range run.Result.Timeline {
			for t := range names {
				banks[t] = append(banks[t], float64(p.Banks[t]))
				ipcs[t] = append(ipcs[t], p.IPC[t])
			}
		}
		for t, th := range run.Result.Threads {
			names[t] = th.Name
		}
		fmt.Print(stats.SeriesChart("bank allocation over time:", names, banks))
		fmt.Print(stats.SeriesChart("IPC over time:", names, ipcs))
	}
	if *verbose {
		fmt.Print(run.Metrics.Table())
		fmt.Printf("cycles=%d repartitions=%d dram=%+v\n",
			run.Result.Cycles, run.Result.Repartitions, run.Result.DRAM)
		for _, th := range run.Result.Threads {
			fmt.Printf("  %-18s mpki=%-6.1f rbl=%-5.2f blp=%-5.2f pages=%d migrated=%d\n",
				th.Name, th.MPKI, th.RBL, th.BLP, th.PagesAllocated, th.PagesMigrated)
		}
	}
}

// runDiff loads two ledgers and prints how the second improves on the
// first (the paper's throughput/fairness vocabulary).
func runDiff(args []string, w *os.File) error {
	if len(args) != 2 {
		return fmt.Errorf("-diff needs exactly two ledger paths (base, new), got %d", len(args))
	}
	base, err := dbpsim.LoadLedger(args[0])
	if err != nil {
		return err
	}
	next, err := dbpsim.LoadLedger(args[1])
	if err != nil {
		return err
	}
	d := dbpsim.DiffLedgers(base, next)
	fmt.Fprintf(w, "base: %-30s %s/%s on %s  WS=%.3f HS=%.3f MS=%.3f\n",
		args[0], base.Scheduler, base.Partition, base.Mix,
		base.Metrics.WeightedSpeedup, base.Metrics.HarmonicSpeedup, base.Metrics.MaxSlowdown)
	fmt.Fprintf(w, "new:  %-30s %s/%s on %s  WS=%.3f HS=%.3f MS=%.3f\n",
		args[1], next.Scheduler, next.Partition, next.Mix,
		next.Metrics.WeightedSpeedup, next.Metrics.HarmonicSpeedup, next.Metrics.MaxSlowdown)
	fmt.Fprintf(w, "delta: %s\n", d)
	return nil
}

// resolveMix builds the workload either from a named mix or an explicit
// benchmark list.
func resolveMix(mixName, benchList string) (dbpsim.Mix, error) {
	if benchList == "" {
		mix, ok := dbpsim.MixByName(mixName)
		if !ok {
			return dbpsim.Mix{}, fmt.Errorf("unknown mix %q (try -list)", mixName)
		}
		return mix, nil
	}
	members := strings.Split(benchList, ",")
	for i := range members {
		members[i] = strings.TrimSpace(members[i])
		if _, ok := dbpsim.BenchByName(members[i]); !ok {
			return dbpsim.Mix{}, fmt.Errorf("unknown benchmark %q (try -list)", members[i])
		}
	}
	return dbpsim.Mix{Name: "custom", Category: "?", Members: members}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dbpsim:", err)
	os.Exit(1)
}
