// Command dbpsim runs one workload mix on the simulated CMP under a chosen
// scheduler/partition pair and prints the paper's metrics.
//
// Usage:
//
//	dbpsim -mix W8-M1 -sched tcm -part dbp
//	dbpsim -benchmarks mcf-like,lbm-like,gcc-like,povray-like -part equal
//	dbpsim -scenario scenarios/diurnal.json -part dbp -json run.json
//	dbpsim -mix W8-M1 -part dbp -json run.json -trace-out run.trace.json
//	dbpsim -mix W8-M1 -part dbp -checkpoint run.ckpt     # periodic resumable snapshots
//	dbpsim -mix W8-M1 -part dbp -restore run.ckpt        # resume an interrupted run
//	dbpsim -diff base.json new.json
//	dbpsim -list
//
// A run resumed with -restore reproduces the uninterrupted run
// bit-identically (same flags and config required — the blob is guarded by
// a config hash). A checkpoint that does not restore (corrupt file, or a
// config/format change) is reported on stderr and the run restarts from
// cycle 0 instead of failing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"

	"dbpsim"
	"dbpsim/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dbpsim:", err)
		os.Exit(1)
	}
}

// run is the testable body of main. Every failure returns instead of
// exiting, so the deferred cleanups (CPU-profile flush, file closes) run on
// error paths too.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dbpsim", flag.ContinueOnError)
	var (
		mixName    = fs.String("mix", "W8-M1", "workload mix name (see -list)")
		benchList  = fs.String("benchmarks", "", "comma-separated benchmark names (overrides -mix)")
		scenPath   = fs.String("scenario", "", "phase-shifting scenario JSON file (overrides -mix/-benchmarks; see docs/SCENARIOS.md)")
		schedName  = fs.String("sched", "frfcfs", "scheduler: fcfs|frfcfs|tcm|atlas")
		partName   = fs.String("part", "none", "partitioning: none|equal|dbp|mcp")
		warmup     = fs.Uint64("warmup", 200_000, "per-core warmup instructions")
		measure    = fs.Uint64("measure", 400_000, "per-core measured instructions")
		seed       = fs.Int64("seed", 1, "random seed")
		banks      = fs.Int("banks", 8, "banks per rank")
		channels   = fs.Int("channels", 2, "memory channels")
		quantum    = fs.Uint64("quantum", 500_000, "DBP repartitioning quantum (CPU cycles)")
		verbose    = fs.Bool("v", false, "print per-thread detail")
		listThings = fs.Bool("list", false, "list benchmarks and mixes, then exit")
		configPath = fs.String("config", "", "JSON config file (partial override of defaults)")
		saveConfig = fs.String("saveconfig", "", "write the effective config to this file and exit")
		latency    = fs.Bool("latency", false, "print per-thread read-latency distributions")
		timeline   = fs.Bool("timeline", false, "print per-thread bank-allocation and IPC sparklines")
		paranoid   = fs.Bool("paranoid", false, "cross-check system invariants during the run")

		checkpointOut = fs.String("checkpoint", "", "periodically write a resumable checkpoint of the run to this file (atomic replace)")
		restorePath   = fs.String("restore", "", "resume the run from a checkpoint file written by -checkpoint (same flags/config required)")
		ckptInterval  = fs.Uint64("checkpoint-interval", 10_000_000, "checkpoint period in simulated CPU cycles (rounded up to the scheduler quantum)")

		jsonOut    = fs.String("json", "", "write the machine-readable run ledger to this file")
		traceOut   = fs.String("trace-out", "", "write a Chrome trace (chrome://tracing / Perfetto) to this file")
		epochsCSV  = fs.String("epochs-csv", "", "write the per-epoch time series as CSV to this file")
		diffMode   = fs.Bool("diff", false, "compare two run ledgers: dbpsim -diff base.json new.json")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *diffMode {
		return runDiff(fs.Args(), stdout)
	}

	if *listThings {
		fmt.Fprintln(stdout, "benchmarks:")
		for _, s := range dbpsim.Suite() {
			fmt.Fprintf(stdout, "  %-18s %-7s target MPKI %-5.4g %s\n", s.Name, s.Class, s.TargetMPKI, s.Description)
		}
		fmt.Fprintln(stdout, "mixes:")
		for _, set := range [][]dbpsim.Mix{dbpsim.Mixes4(), dbpsim.Mixes8(), dbpsim.Mixes16()} {
			for _, m := range set {
				fmt.Fprintf(stdout, "  %-8s (%s) %s\n", m.Name, m.Category, strings.Join(m.Members, ", "))
			}
		}
		return nil
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "dbpsim: pprof:", err)
			}
		}()
	}

	// A scenario replaces the stationary mix: thread count and identity
	// come from the timeline file, and the run reports under the synthetic
	// "scenario:<name>" mix label.
	var scen *dbpsim.Scenario
	mix, err := resolveMix(*mixName, *benchList)
	if *scenPath != "" {
		scen, err = dbpsim.LoadScenario(*scenPath)
		if err != nil {
			return err
		}
		mix, err = dbpsim.ScenarioMix(scen), nil
	}
	if err != nil {
		return err
	}
	cfg := dbpsim.DefaultConfig(mix.Cores())
	cfg.Seed = *seed
	cfg.Geometry.BanksPerRank = *banks
	cfg.Geometry.Channels = *channels
	cfg.DBP.QuantumCPUCycles = *quantum
	if *configPath != "" {
		loaded, err := dbpsim.LoadConfig(*configPath, cfg)
		if err != nil {
			return err
		}
		cfg = loaded
		cfg.Cores = mix.Cores() // the mix decides the core count
	}
	cfg.RecordLatencyHistograms = *latency
	cfg.RecordTimeline = *timeline
	cfg.Paranoid = *paranoid
	if *saveConfig != "" {
		if err := dbpsim.SaveConfig(*saveConfig, cfg); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", *saveConfig)
		return nil
	}

	// Observability: one recorder feeds the ledger's epoch series, the
	// Chrome trace and the epoch CSV; per-request spans are captured only
	// when the trace asks for them. Built through a closure because the
	// checkpoint-restore fallback path needs a pristine replacement.
	newRec := func() (*dbpsim.Recorder, error) {
		if *jsonOut == "" && *traceOut == "" && *epochsCSV == "" {
			return nil, nil
		}
		return dbpsim.NewRecorder(dbpsim.RecorderOptions{
			NumThreads: mix.Cores(),
			NumBanks:   cfg.Geometry.NumColors(),
			Spans:      *traceOut != "",
		})
	}
	rec, err := newRec()
	if err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	var ck *dbpsim.Checkpointer
	if *checkpointOut != "" || *restorePath != "" {
		ck = &dbpsim.Checkpointer{}
		if *checkpointOut != "" {
			ck.Interval = *ckptInterval
			ck.Sink = func(blob []byte, cycle uint64) {
				if err := writeFileAtomic(*checkpointOut, blob); err != nil {
					fmt.Fprintf(os.Stderr, "dbpsim: checkpoint at cycle %d: %v\n", cycle, err)
				}
			}
			ck.OnError = func(err error) {
				fmt.Fprintln(os.Stderr, "dbpsim: checkpoint:", err)
			}
		}
		if *restorePath != "" {
			blob, err := os.ReadFile(*restorePath)
			if err != nil {
				return err
			}
			ck.Restore = blob
			// Stderr, so resumed stdout stays diffable against a full run.
			ck.OnRestore = func(cycle uint64) {
				fmt.Fprintf(os.Stderr, "dbpsim: resumed from %s at cycle %d\n", *restorePath, cycle)
			}
		}
	}

	exp := dbpsim.NewExperiment(cfg, *warmup, *measure)
	sched, part := dbpsim.SchedulerKind(*schedName), dbpsim.PartitionKind(*partName)
	doRun := func() (dbpsim.MixRun, error) {
		if scen != nil {
			return dbpsim.RunScenario(context.Background(), exp, scen, sched, part, rec, ck)
		}
		return exp.RunMixCheckpointedContext(context.Background(), mix, sched, part, rec, ck)
	}
	runOut, err := doRun()
	if err != nil {
		var rerr *dbpsim.RestoreError
		if ck == nil || ck.Restore == nil || !errors.As(err, &rerr) {
			return err
		}
		// The checkpoint does not restore into this run's configuration:
		// warn and restart from cycle 0 rather than failing a run we know
		// how to execute.
		fmt.Fprintf(os.Stderr, "dbpsim: %s does not restore (%v); rerunning from cycle 0\n", *restorePath, err)
		ck.Restore = nil
		if rec, err = newRec(); err != nil {
			return err
		}
		if runOut, err = doRun(); err != nil {
			return err
		}
	}

	fmt.Fprintf(stdout, "%s under %s/%s: %s\n", mix.Name, *schedName, *partName, runOut.Metrics)
	if *jsonOut != "" {
		led, err := dbpsim.BuildLedger("dbpsim", cfg, *warmup, *measure, runOut, rec)
		if err != nil {
			return err
		}
		if err := dbpsim.SaveLedger(*jsonOut, led); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote ledger", *jsonOut)
	}
	if *traceOut != "" {
		if err := writeTo(*traceOut, rec.WriteTrace); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote trace", *traceOut)
	}
	if *epochsCSV != "" {
		if err := writeTo(*epochsCSV, rec.WriteEpochCSV); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote epochs", *epochsCSV)
	}
	if *latency {
		fmt.Fprintln(stdout, "read latency (memory cycles):")
		for i, h := range runOut.Result.ReadLatency {
			if h == nil || h.N == 0 {
				continue
			}
			fmt.Fprintf(stdout, "  %-18s mean=%-7.1f min=%-6.0f max=%-7.0f n=%d\n",
				runOut.Result.Threads[i].Name, h.MeanValue(), h.Min, h.Max, h.N)
		}
	}
	if *timeline && len(runOut.Result.Timeline) > 0 {
		names := make([]string, len(runOut.Result.Threads))
		banks := make([][]float64, len(runOut.Result.Threads))
		ipcs := make([][]float64, len(runOut.Result.Threads))
		for _, p := range runOut.Result.Timeline {
			for t := range names {
				banks[t] = append(banks[t], float64(p.Banks[t]))
				ipcs[t] = append(ipcs[t], p.IPC[t])
			}
		}
		for t, th := range runOut.Result.Threads {
			names[t] = th.Name
		}
		fmt.Fprint(stdout, stats.SeriesChart("bank allocation over time:", names, banks))
		fmt.Fprint(stdout, stats.SeriesChart("IPC over time:", names, ipcs))
	}
	if *verbose {
		fmt.Fprint(stdout, runOut.Metrics.Table())
		fmt.Fprintf(stdout, "cycles=%d repartitions=%d dram=%+v\n",
			runOut.Result.Cycles, runOut.Result.Repartitions, runOut.Result.DRAM)
		for _, th := range runOut.Result.Threads {
			fmt.Fprintf(stdout, "  %-18s mpki=%-6.1f rbl=%-5.2f blp=%-5.2f pages=%d migrated=%d\n",
				th.Name, th.MPKI, th.RBL, th.BLP, th.PagesAllocated, th.PagesMigrated)
		}
	}
	return nil
}

// writeFileAtomic replaces path with data via a same-directory tmp file,
// fsync, and rename, so an interrupted write never leaves a torn checkpoint
// where a resumable one used to be.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// writeTo creates path, streams write into it, and closes it, reporting the
// first error (including the close, which matters for buffered writers).
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runDiff loads two ledgers and prints how the second improves on the
// first (the paper's throughput/fairness vocabulary).
func runDiff(args []string, w io.Writer) error {
	if len(args) != 2 {
		return fmt.Errorf("-diff needs exactly two ledger paths (base, new), got %d", len(args))
	}
	base, err := dbpsim.LoadLedger(args[0])
	if err != nil {
		return err
	}
	next, err := dbpsim.LoadLedger(args[1])
	if err != nil {
		return err
	}
	d := dbpsim.DiffLedgers(base, next)
	fmt.Fprintf(w, "base: %-30s %s/%s on %s  WS=%.3f HS=%.3f MS=%.3f\n",
		args[0], base.Scheduler, base.Partition, base.Mix,
		base.Metrics.WeightedSpeedup, base.Metrics.HarmonicSpeedup, base.Metrics.MaxSlowdown)
	fmt.Fprintf(w, "new:  %-30s %s/%s on %s  WS=%.3f HS=%.3f MS=%.3f\n",
		args[1], next.Scheduler, next.Partition, next.Mix,
		next.Metrics.WeightedSpeedup, next.Metrics.HarmonicSpeedup, next.Metrics.MaxSlowdown)
	fmt.Fprintf(w, "delta: %s\n", d)
	return nil
}

// resolveMix builds the workload either from a named mix or an explicit
// benchmark list.
func resolveMix(mixName, benchList string) (dbpsim.Mix, error) {
	if benchList == "" {
		mix, ok := dbpsim.MixByName(mixName)
		if !ok {
			return dbpsim.Mix{}, fmt.Errorf("unknown mix %q (try -list)", mixName)
		}
		return mix, nil
	}
	members := strings.Split(benchList, ",")
	for i := range members {
		members[i] = strings.TrimSpace(members[i])
		if _, ok := dbpsim.BenchByName(members[i]); !ok {
			return dbpsim.Mix{}, fmt.Errorf("unknown benchmark %q (try -list)", members[i])
		}
	}
	return dbpsim.Mix{Name: "custom", Category: "?", Members: members}, nil
}
