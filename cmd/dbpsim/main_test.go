package main

import (
	"io"
	"path/filepath"
	"testing"

	"dbpsim"
)

func TestResolveMixNamed(t *testing.T) {
	mix, err := resolveMix("W8-M1", "")
	if err != nil {
		t.Fatal(err)
	}
	if mix.Name != "W8-M1" || mix.Cores() != 8 {
		t.Errorf("mix = %+v", mix)
	}
}

func TestResolveMixUnknownName(t *testing.T) {
	if _, err := resolveMix("W99-X", ""); err == nil {
		t.Error("unknown mix accepted")
	}
}

func TestResolveMixCustomList(t *testing.T) {
	mix, err := resolveMix("ignored", "mcf-like, lbm-like ,gcc-like")
	if err != nil {
		t.Fatal(err)
	}
	if mix.Cores() != 3 {
		t.Errorf("custom mix cores = %d", mix.Cores())
	}
	if mix.Members[1] != "lbm-like" {
		t.Errorf("whitespace not trimmed: %q", mix.Members[1])
	}
}

func TestResolveMixCustomUnknownBenchmark(t *testing.T) {
	if _, err := resolveMix("", "mcf-like,ghost"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunReturnsErrors(t *testing.T) {
	if err := run([]string{"-no-such-flag"}, io.Discard); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-mix", "W99-X"}, io.Discard); err == nil {
		t.Error("unknown mix accepted")
	}
	if err := run([]string{"-diff", "only-one.json"}, io.Discard); err == nil {
		t.Error("-diff with one path accepted")
	}
	if err := run([]string{"-config", filepath.Join(t.TempDir(), "missing.json")}, io.Discard); err == nil {
		t.Error("missing config file accepted")
	}
}

// TestRunWritesLedger drives a full (tiny) CLI run through run(), the same
// code path main uses, and checks the ledger lands on disk.
func TestRunWritesLedger(t *testing.T) {
	out := filepath.Join(t.TempDir(), "run.json")
	err := run([]string{
		"-benchmarks", "mcf-like,gcc-like",
		"-warmup", "1000", "-measure", "5000",
		"-json", out,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	led, err := dbpsim.LoadLedger(out)
	if err != nil {
		t.Fatal(err)
	}
	if led.Tool != "dbpsim" || led.Mix != "custom" {
		t.Errorf("ledger = %s/%s", led.Tool, led.Mix)
	}
}
