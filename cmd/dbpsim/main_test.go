package main

import "testing"

func TestResolveMixNamed(t *testing.T) {
	mix, err := resolveMix("W8-M1", "")
	if err != nil {
		t.Fatal(err)
	}
	if mix.Name != "W8-M1" || mix.Cores() != 8 {
		t.Errorf("mix = %+v", mix)
	}
}

func TestResolveMixUnknownName(t *testing.T) {
	if _, err := resolveMix("W99-X", ""); err == nil {
		t.Error("unknown mix accepted")
	}
}

func TestResolveMixCustomList(t *testing.T) {
	mix, err := resolveMix("ignored", "mcf-like, lbm-like ,gcc-like")
	if err != nil {
		t.Fatal(err)
	}
	if mix.Cores() != 3 {
		t.Errorf("custom mix cores = %d", mix.Cores())
	}
	if mix.Members[1] != "lbm-like" {
		t.Errorf("whitespace not trimmed: %q", mix.Members[1])
	}
}

func TestResolveMixCustomUnknownBenchmark(t *testing.T) {
	if _, err := resolveMix("", "mcf-like,ghost"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
