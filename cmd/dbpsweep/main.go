// Command dbpsweep regenerates the paper's tables and figures (DESIGN.md's
// experiment index) and prints paper-style rows, with headline lines
// comparing measured deltas against the paper's claims.
//
// Usage:
//
//	dbpsweep -exp main            # Figs. 6–7: FRFCFS / EqualBP / DBP
//	dbpsweep -exp all -quick      # everything, reduced budgets
//	dbpsweep -exp table2 -csv out # write CSV next to the text output
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"dbpsim/internal/experiments"
	"dbpsim/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dbpsweep:", err)
		os.Exit(1)
	}
}

// run is the testable body of main. Every failure returns instead of
// exiting, so the deferred cleanups (CPU-profile flush, markdown-report
// close) run on error paths too — the old scattered os.Exit call sites
// skipped them.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dbpsweep", flag.ContinueOnError)
	var (
		expName    = fs.String("exp", "main", "experiment id or 'all' (one of: "+strings.Join(experiments.Names(), ", ")+")")
		scenPath   = fs.String("scenario", "", "run the policy comparison on a phase-shifting scenario JSON file instead of -exp")
		quick      = fs.Bool("quick", false, "reduced budgets and mix list")
		csvDir     = fs.String("csv", "", "directory to write per-experiment CSV files")
		quiet      = fs.Bool("q", false, "suppress progress lines")
		plot       = fs.Bool("plot", false, "render bar charts for sweep experiments")
		mdPath     = fs.String("md", "", "also append a markdown report to this file")
		jsonDir    = fs.String("json", "", "directory to write one machine-readable run ledger per (mix, policy) run")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "dbpsweep: pprof:", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	opts := experiments.DefaultOptions(*quick)
	opts.LedgerDir = *jsonDir
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  …", line) }
	}

	if *scenPath != "" {
		return runScenario(*scenPath, opts, stdout, *csvDir, *mdPath, *plot)
	}

	reg := experiments.Registry()
	var ids []string
	if *expName == "all" {
		ids = experiments.Names()
		// Run cheap configuration/characterisation first.
		sort.SliceStable(ids, func(i, j int) bool { return order(ids[i]) < order(ids[j]) })
	} else {
		if reg[*expName] == nil {
			return fmt.Errorf("unknown experiment %q; known: %s",
				*expName, strings.Join(experiments.Names(), ", "))
		}
		ids = []string{*expName}
	}

	var md *os.File
	if *mdPath != "" {
		var err error
		md, err = os.OpenFile(*mdPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer md.Close()
	}
	for _, id := range ids {
		start := time.Now()
		out, err := reg[id](opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if md != nil {
			if err := out.WriteMarkdown(md); err != nil {
				return err
			}
		}
		writeOut := out.Write
		if *plot {
			writeOut = out.WritePlot
		}
		if err := writeOut(stdout); err != nil {
			return err
		}
		if *csvDir != "" && out.Table != nil {
			if err := writeCSV(*csvDir, out.ID, out.Table.CSV()); err != nil {
				return err
			}
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "  %s finished in %.1fs\n", id, time.Since(start).Seconds())
		}
	}
	return nil
}

// runScenario loads one scenario file and runs the phase-shifting policy
// comparison on it, reusing the sweep's output plumbing (-csv, -md, -plot).
func runScenario(path string, opts experiments.Options, stdout io.Writer, csvDir, mdPath string, plot bool) error {
	sc, err := scenario.Load(path)
	if err != nil {
		return err
	}
	out, err := experiments.ScenarioSweep(opts, sc)
	if err != nil {
		return err
	}
	if mdPath != "" {
		md, err := os.OpenFile(mdPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer md.Close()
		if err := out.WriteMarkdown(md); err != nil {
			return err
		}
	}
	writeOut := out.Write
	if plot {
		writeOut = out.WritePlot
	}
	if err := writeOut(stdout); err != nil {
		return err
	}
	if csvDir != "" && out.Table != nil {
		return writeCSV(csvDir, out.ID, out.Table.CSV())
	}
	return nil
}

// order sorts experiment ids into a sensible presentation sequence.
func order(id string) int {
	seq := []string{"table1", "table2", "fig1", "fig2", "main", "dbptcm", "mcp",
		"banks", "cores", "quantum", "dynamics", "ablation", "tcmthresh",
		"prefetch", "energy", "parbs", "mapping", "llc", "timing"}
	for i, s := range seq {
		if s == id {
			return i
		}
	}
	return len(seq)
}

func writeCSV(dir, id, csv string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, id+".csv"), []byte(csv), 0o644)
}
