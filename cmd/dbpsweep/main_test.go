package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"dbpsim/internal/experiments"
)

func TestOrderCoversRegistry(t *testing.T) {
	seen := map[int]string{}
	for _, id := range experiments.Names() {
		pos := order(id)
		if prev, dup := seen[pos]; dup {
			t.Errorf("ids %q and %q share order %d", prev, id, pos)
		}
		seen[pos] = id
	}
	if order("nonexistent") <= order("table1") {
		t.Error("unknown ids must sort last")
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	if err := writeCSV(dir, "unit", "a,b\n1,2\n"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "unit.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a,b\n1,2\n" {
		t.Errorf("csv content = %q", data)
	}
	// Nested directory creation.
	if err := writeCSV(filepath.Join(dir, "x", "y"), "z", "q\n"); err != nil {
		t.Fatal(err)
	}
}

func TestRunReturnsErrors(t *testing.T) {
	if err := run([]string{"-no-such-flag"}, io.Discard); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-exp", "no-such-experiment"}, io.Discard); err == nil {
		t.Error("unknown experiment accepted")
	}
}
