package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-addr", "999.999.999.999:1"}); err == nil {
		t.Error("unlistenable address accepted")
	}
}

// TestRunServeAndDrain drives the daemon end to end in-process: start on a
// free port, health-check, execute one quick run, then SIGTERM and assert
// run() returns nil (the exit-0 drain path).
func TestRunServeAndDrain(t *testing.T) {
	addrFile := filepath.Join(t.TempDir(), "addr")
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile, "-workers", "2"})
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			addr = string(data)
			break
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited early: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never wrote its address file")
		}
		time.Sleep(10 * time.Millisecond)
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	body := `{"benchmarks": ["mcf-like", "gcc-like"], "warmup": 1000, "measure": 5000}`
	resp, err = http.Post(base+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d: %s", resp.StatusCode, data)
	}
	var led struct {
		SchemaVersion int `json:"schema_version"`
	}
	if err := json.Unmarshal(data, &led); err != nil || led.SchemaVersion < 1 {
		t.Fatalf("response is not a versioned ledger (%v): %.120s", err, data)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
}
