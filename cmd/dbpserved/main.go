// Command dbpserved serves the DBP simulator over HTTP: POST simulation
// requests, receive schema-v1 run ledgers, with a bounded worker pool,
// backpressure, and a content-addressed result cache deduplicating
// identical work (see internal/serve).
//
// Usage:
//
//	dbpserved -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/runs -d '{"mix": "W8-M1", "partition": "dbp"}'
//	curl -s -X POST 'localhost:8080/v1/runs?async=1' -d '{"mix": "W8-H1"}'   # 202 + poll URL
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, queued and
// in-flight simulations finish, then the process exits 0. If the drain
// grace period expires first, in-flight simulations are canceled at their
// next scheduler quantum and recorded as canceled jobs — shutdown is
// bounded either way.
//
// With -journal-dir set, async job state and results persist across
// restarts: finished jobs keep answering GET /v1/runs/{id} (and their
// ledgers keep cache-hitting), and running jobs checkpoint their simulation
// state every -checkpoint-interval CPU cycles. A job interrupted by a crash
// or an expired drain grace is requeued at its original id on the next
// start and resumes from its latest checkpoint — bit-identical to an
// uninterrupted run — falling back to a clean rerun when no usable
// checkpoint exists.
//
// -chaos enables the fault-injection layer (internal/chaos) for resilience
// drills — e.g. -chaos 'panic=2,delay=250ms'. It is refused unless
// -chaos-allow is also set, so a stray flag can never put fault injection
// in front of real traffic.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dbpsim/internal/chaos"
	"dbpsim/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dbpserved:", err)
		os.Exit(1)
	}
}

// run is the testable body of main: all error paths return (so deferred
// cleanup runs) and the caller owns the exit code.
func run(args []string) error {
	fs := flag.NewFlagSet("dbpserved", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		addrFile   = fs.String("addr-file", "", "write the bound listen address to this file (for scripts that use port 0)")
		workers    = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queueDepth = fs.Int("queue", 64, "job queue depth; a full queue answers 429")
		runTimeout = fs.Duration("run-timeout", 5*time.Minute, "cap on synchronous waits and on per-run execution (requests may ask for less via ?timeout=)")
		maxInstr   = fs.Uint64("max-instructions", 0, "per-request warmup+measure cap (0 = uncapped)")
		drainGrace = fs.Duration("drain-grace", 10*time.Minute, "how long shutdown waits before canceling in-flight simulations")
		logJSON    = fs.Bool("log-json", false, "structured logs as JSON lines instead of key=value text")
		journalDir = fs.String("journal-dir", "", "persist job state, checkpoints, and results under this directory (survives restarts)")
		ckptEvery  = fs.Uint64("checkpoint-interval", 25_000_000, "simulated CPU cycles between run checkpoints (needs -journal-dir)")
		chaosSpec  = fs.String("chaos", "", "fault-injection spec, e.g. 'panic=2,delay=250ms,journal=3' (requires -chaos-allow)")
		chaosAllow = fs.Bool("chaos-allow", false, "explicitly permit -chaos (refused otherwise)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var injector *chaos.Injector
	if *chaosSpec != "" {
		if !*chaosAllow {
			return fmt.Errorf("-chaos %q refused: fault injection needs the explicit -chaos-allow flag", *chaosSpec)
		}
		inj, err := chaos.Parse(*chaosSpec)
		if err != nil {
			return err
		}
		injector = inj
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	log := slog.New(handler)

	// Register the drain signals before the listener exists, so a signal
	// arriving at any point after startup is never fatal mid-drain.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)

	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	srv, err := serve.New(serve.Options{
		Workers:            *workers,
		QueueDepth:         *queueDepth,
		RunTimeout:         *runTimeout,
		MaxInstructions:    *maxInstr,
		Logger:             log,
		JournalDir:         *journalDir,
		CheckpointInterval: *ckptEvery,
		Chaos:              injector,
	})
	if err != nil {
		return err
	}
	if injector != nil {
		log.Warn("CHAOS MODE: fault injection active", "spec", injector.String())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			ln.Close()
			return err
		}
		defer os.Remove(*addrFile)
	}
	httpSrv := &http.Server{Handler: srv}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	log.Info("listening", "addr", bound, "workers", *workers, "queue", *queueDepth)

	select {
	case sig := <-stop:
		log.Info("shutting down", "signal", sig.String())
	case err := <-serveErr:
		return err
	}

	// Drain: stop accepting, then let queued and in-flight simulations
	// finish before exiting.
	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := srv.Close(ctx); err != nil {
		return err
	}
	log.Info("drained; exiting")
	return nil
}
