// Command dbpserved serves the DBP simulator over HTTP: POST simulation
// requests, receive schema-v1 run ledgers, with a bounded worker pool,
// backpressure, and a content-addressed result cache deduplicating
// identical work (see internal/serve).
//
// Usage:
//
//	dbpserved -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/runs -d '{"mix": "W8-M1", "partition": "dbp"}'
//	curl -s -X POST 'localhost:8080/v1/runs?async=1' -d '{"mix": "W8-H1"}'   # 202 + poll URL
//	curl -s localhost:8080/metrics
//
// Fleet mode (see internal/fleet and docs/FLEET.md) shards the service
// across machines — one coordinator owning placement, N workers running
// simulations:
//
//	dbpserved -coordinator -addr :9000
//	dbpserved -join http://coord:9000 -advertise http://worker1:8080 -addr :8080
//	curl -sN -X POST coord:9000/v1/sweeps -d '{"mixes":["W8-M1"],"partitions":["none","dbp"]}'
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, queued and
// in-flight simulations finish, then the process exits 0. If the drain
// grace period expires first, in-flight simulations are canceled at their
// next scheduler quantum and recorded as canceled jobs — shutdown is
// bounded either way.
//
// With -journal-dir set, async job state and results persist across
// restarts: finished jobs keep answering GET /v1/runs/{id} (and their
// ledgers keep cache-hitting), and running jobs checkpoint their simulation
// state every -checkpoint-interval CPU cycles. A job interrupted by a crash
// or an expired drain grace is requeued at its original id on the next
// start and resumes from its latest checkpoint — bit-identical to an
// uninterrupted run — falling back to a clean rerun when no usable
// checkpoint exists. -retain-checkpoints picks the blob retention policy
// (latest: prune superseded blobs eagerly; all: keep everything).
//
// -chaos enables the fault-injection layer (internal/chaos) for resilience
// drills — e.g. -chaos 'panic=2,delay=250ms'. It is refused unless
// -chaos-allow is also set, so a stray flag can never put fault injection
// in front of real traffic.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dbpsim/internal/chaos"
	"dbpsim/internal/fleet"
	"dbpsim/internal/serve"
	"dbpsim/internal/tenant"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dbpserved:", err)
		os.Exit(1)
	}
}

// run is the testable body of main: all error paths return (so deferred
// cleanup runs) and the caller owns the exit code.
func run(args []string) error {
	fs := flag.NewFlagSet("dbpserved", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		addrFile   = fs.String("addr-file", "", "write the bound listen address to this file (for scripts that use port 0)")
		workers    = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queueDepth = fs.Int("queue", 64, "job queue depth; a full queue answers 429")
		runTimeout = fs.Duration("run-timeout", 5*time.Minute, "cap on synchronous waits and on per-run execution (requests may ask for less via ?timeout=)")
		maxInstr   = fs.Uint64("max-instructions", 0, "per-request warmup+measure cap (0 = uncapped)")
		drainGrace = fs.Duration("drain-grace", 10*time.Minute, "how long shutdown waits before canceling in-flight simulations")
		logJSON    = fs.Bool("log-json", false, "structured logs as JSON lines instead of key=value text")
		journalDir = fs.String("journal-dir", "", "persist job state, checkpoints, and results under this directory (survives restarts)")
		ckptEvery  = fs.Uint64("checkpoint-interval", 25_000_000, "simulated CPU cycles between run checkpoints (needs -journal-dir or -join)")
		retain     = fs.String("retain-checkpoints", serve.RetainLatest, "checkpoint blob retention: 'latest' keeps each job's newest blob and prunes the rest; 'all' never deletes")
		chaosSpec  = fs.String("chaos", "", "fault-injection spec, e.g. 'panic=2,delay=250ms,journal=3' (requires -chaos-allow)")
		chaosAllow = fs.Bool("chaos-allow", false, "explicitly permit -chaos (refused otherwise)")

		tenantsFile = fs.String("tenants", "", "tenant config file (API keys, weights, lanes, quotas); reloaded when it changes on disk")
		benchLedger = fs.String("bench-ledger", "", "bench ledger (dbpsim-bench/v1 JSON) calibrating the admission cost model; default built-in constants")

		coordinator = fs.Bool("coordinator", false, "run as a fleet coordinator: owns placement and the sweep API, runs no simulations itself")
		joinURL     = fs.String("join", "", "run as a fleet worker: register with (and heartbeat to) this coordinator base URL")
		advertise   = fs.String("advertise", "", "base URL peers reach this worker at (fleet worker mode; default http://<bound addr>)")
		workerID    = fs.String("worker-id", "", "stable worker identity on the ring (fleet worker mode; default the advertise address)")
		heartbeat   = fs.Duration("heartbeat", 2*time.Second, "fleet worker heartbeat interval")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordinator && *joinURL != "" {
		return fmt.Errorf("-coordinator and -join are mutually exclusive: a node is either the coordinator or a worker")
	}

	var reg *tenant.Registry
	if *tenantsFile != "" {
		r, err := tenant.NewRegistry(*tenantsFile)
		if err != nil {
			return err
		}
		reg = r
	}
	var costModel *tenant.CostModel
	if *benchLedger != "" {
		m, err := tenant.LoadCostModel(*benchLedger)
		if err != nil {
			return err
		}
		costModel = m
	}

	var injector *chaos.Injector
	if *chaosSpec != "" {
		if !*chaosAllow {
			return fmt.Errorf("-chaos %q refused: fault injection needs the explicit -chaos-allow flag", *chaosSpec)
		}
		inj, err := chaos.Parse(*chaosSpec)
		if err != nil {
			return err
		}
		injector = inj
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	log := slog.New(handler)

	// Register the drain signals before the listener exists, so a signal
	// arriving at any point after startup is never fatal mid-drain.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)

	// Coordinator mode: placement + sweep API only, no simulation pool.
	// With -journal-dir the coordinator is crash-survivable: it replays its
	// journal before listening, then resyncs with live workers and resumes
	// unfinished sweeps in the background once the listener is up.
	if *coordinator {
		coord, err := fleet.NewCoordinator(fleet.CoordinatorOptions{
			MaxInstructions: *maxInstr,
			CellTimeout:     *runTimeout * 3,
			Tenants:         reg,
			CostModel:       costModel,
			JournalDir:      *journalDir,
			Chaos:           injector,
			Logger:          log,
		})
		if err != nil {
			return err
		}
		defer coord.Close()
		if injector != nil {
			log.Warn("CHAOS MODE: fault injection active", "spec", injector.String())
		}
		ln, bound, cleanup, err := listen(*addr, *addrFile)
		if err != nil {
			return err
		}
		defer cleanup()
		httpSrv := &http.Server{Handler: coord}
		serveErr := make(chan error, 1)
		go func() { serveErr <- httpSrv.Serve(ln) }()
		log.Info("coordinator listening", "addr", bound)
		resumeCtx, cancelResume := context.WithCancel(context.Background())
		defer cancelResume()
		coord.Resume(resumeCtx)
		select {
		case sig := <-stop:
			log.Info("coordinator shutting down", "signal", sig.String())
		case err := <-serveErr:
			return err
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("http shutdown: %w", err)
		}
		if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		log.Info("coordinator exiting")
		return nil
	}

	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	opt := serve.Options{
		Workers:            *workers,
		QueueDepth:         *queueDepth,
		RunTimeout:         *runTimeout,
		MaxInstructions:    *maxInstr,
		Logger:             log,
		JournalDir:         *journalDir,
		CheckpointInterval: *ckptEvery,
		RetainCheckpoints:  *retain,
		Chaos:              injector,
		Tenants:            reg,
		CostModel:          costModel,
	}

	// Worker mode: bind the listener first (the advertise default needs the
	// bound address), wire the fleet hooks into the server options, then
	// join the coordinator once the HTTP surface is live.
	var fleetWorker *fleet.Worker
	ln, bound, cleanup, err := listen(*addr, *addrFile)
	if err != nil {
		return err
	}
	defer cleanup()

	if *joinURL != "" {
		adv := *advertise
		if adv == "" {
			adv = "http://" + bound
		}
		id := *workerID
		if id == "" {
			id = adv
		}
		fleetWorker, err = fleet.NewWorker(fleet.WorkerOptions{
			ID:                id,
			Advertise:         adv,
			Coordinator:       *joinURL,
			HeartbeatInterval: *heartbeat,
			MaxInstructions:   *maxInstr,
			Chaos:             injector,
			Logger:            log,
		})
		if err != nil {
			return err
		}
		opt.Peers = fleetWorker.Consult()
		opt.OnCheckpoint = fleetWorker.OnCheckpoint
		opt.ExtraMetrics = fleetWorker.ExtraMetrics
	}

	srv, err := serve.New(opt)
	if err != nil {
		return err
	}
	if injector != nil {
		log.Warn("CHAOS MODE: fault injection active", "spec", injector.String())
	}

	var rootHandler http.Handler = srv
	if fleetWorker != nil {
		fleetWorker.Attach(srv)
		rootHandler = fleetWorker
	}
	httpSrv := &http.Server{Handler: rootHandler}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	log.Info("listening", "addr", bound, "workers", *workers, "queue", *queueDepth)

	if fleetWorker != nil {
		// An unreachable coordinator is not fatal: past the deadline the
		// worker starts degraded (standalone serving) and keeps retrying the
		// join in the background.
		joinCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		err := fleetWorker.Start(joinCtx)
		cancel()
		if err != nil {
			return err
		}
		defer fleetWorker.Stop()
		log.Info("fleet membership loop running", "coordinator", *joinURL)
	}

	select {
	case sig := <-stop:
		log.Info("shutting down", "signal", sig.String())
	case err := <-serveErr:
		return err
	}

	// Drain: stop accepting, then let queued and in-flight simulations
	// finish before exiting.
	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := srv.Close(ctx); err != nil {
		return err
	}
	log.Info("drained; exiting")
	return nil
}

// listen binds the address and handles the -addr-file contract. cleanup
// removes the addr file; call it via defer.
func listen(addr, addrFile string) (net.Listener, string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", nil, err
	}
	bound := ln.Addr().String()
	cleanup := func() {}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound), 0o644); err != nil {
			ln.Close()
			return nil, "", nil, err
		}
		cleanup = func() { os.Remove(addrFile) }
	}
	return ln, bound, cleanup, nil
}
