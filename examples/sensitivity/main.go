// Sensitivity: where does DBP's advantage come from? This example sweeps
// the total bank count and shows that DBP's edge over equal partitioning is
// largest exactly when banks are scarce — equal shares are then too small
// for high-BLP threads, which is the deficiency DBP was designed to fix.
package main

import (
	"fmt"
	"log"

	"dbpsim"
)

func main() {
	mix, ok := dbpsim.MixByName("W8-M1")
	if !ok {
		log.Fatal("mix not found")
	}

	fmt.Printf("mix %s — EqualBP vs DBP as banks vary\n\n", mix.Name)
	fmt.Printf("%6s %22s %22s %16s\n", "banks", "EqualBP (WS/MS)", "DBP (WS/MS)", "DBP advantage")
	for _, banksPerRank := range []int{4, 8, 16} {
		cfg := dbpsim.DefaultConfig(8)
		cfg.Geometry.BanksPerRank = banksPerRank
		exp := dbpsim.NewExperiment(cfg, 200_000, 400_000)

		equal, err := exp.RunMix(mix, dbpsim.SchedFRFCFS, dbpsim.PartEqual)
		if err != nil {
			log.Fatal(err)
		}
		dbp, err := exp.RunMix(mix, dbpsim.SchedFRFCFS, dbpsim.PartDBP)
		if err != nil {
			log.Fatal(err)
		}
		ws, fairness := dbp.Metrics.Delta(equal.Metrics)
		totalBanks := banksPerRank * cfg.Geometry.Channels * cfg.Geometry.RanksPerChannel
		fmt.Printf("%6d %10.3f / %-9.3f %10.3f / %-9.3f %+6.1f%% / %+5.1f%%\n",
			totalBanks,
			equal.Metrics.WeightedSpeedup, equal.Metrics.MaxSlowdown,
			dbp.Metrics.WeightedSpeedup, dbp.Metrics.MaxSlowdown,
			ws, fairness)
	}
	fmt.Println("\nThe advantage peaks at moderate bank counts: with banks ≈ threads")
	fmt.Println("there is nothing left to reallocate (everyone holds one), and with")
	fmt.Println("plentiful banks even equal shares satisfy each thread's parallelism;")
	fmt.Println("in between, DBP moves the scarce banks to the threads that need them.")
}
