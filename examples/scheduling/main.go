// Scheduling: the paper's orthogonality claim — memory scheduling and bank
// partitioning attack different interference mechanisms, so combining them
// beats either alone. This example crosses three schedulers (FR-FCFS, TCM,
// ATLAS) with and without DBP on one mix.
package main

import (
	"fmt"
	"log"

	"dbpsim"
)

func main() {
	cfg := dbpsim.DefaultConfig(8)
	exp := dbpsim.NewExperiment(cfg, 200_000, 400_000)
	mix, ok := dbpsim.MixByName("W8-M2")
	if !ok {
		log.Fatal("mix not found")
	}

	schedulers := []dbpsim.SchedulerKind{dbpsim.SchedFRFCFS, dbpsim.SchedTCM, dbpsim.SchedATLAS}
	partitions := []dbpsim.PartitionKind{dbpsim.PartNone, dbpsim.PartDBP}

	fmt.Printf("mix %s — WS (throughput) / MS (unfairness, lower is better)\n\n", mix.Name)
	fmt.Printf("%-10s %18s %18s\n", "scheduler", "no partitioning", "with DBP")
	for _, s := range schedulers {
		fmt.Printf("%-10s", s)
		for _, p := range partitions {
			run, err := exp.RunMix(mix, s, p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("   %7.3f / %-7.3f", run.Metrics.WeightedSpeedup, run.Metrics.MaxSlowdown)
		}
		fmt.Println()
	}
	fmt.Println("\nEvery scheduler improves when DBP removes bank-level interference")
	fmt.Println("underneath it: the mechanisms are orthogonal, as the paper argues.")
}
