// Mixstudy: the paper's headline scenario in miniature. An 8-core mix of
// heavy and light benchmarks runs under all six policy points (FR-FCFS,
// equal bank partitioning, DBP, TCM, MCP, DBP-TCM); the program prints the
// per-policy metrics and then dissects *who* pays under each policy by
// showing every thread's slowdown.
package main

import (
	"fmt"
	"log"

	"dbpsim"
)

func main() {
	cfg := dbpsim.DefaultConfig(8)
	exp := dbpsim.NewExperiment(cfg, 200_000, 400_000)

	mix, ok := dbpsim.MixByName("W8-H1") // 6 heavy + 2 light members
	if !ok {
		log.Fatal("mix not found")
	}
	policies := dbpsim.StandardPolicies()

	cmp, err := dbpsim.ComparePolicies(exp, mix, policies)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cmp.Format(policies))

	// Per-thread slowdowns: the max column is the system's unfairness.
	fmt.Printf("\nper-thread slowdowns (IPC alone / IPC shared):\n")
	fmt.Printf("%-18s", "thread")
	for _, p := range policies {
		fmt.Printf(" %9s", p.Label)
	}
	fmt.Println()
	for ti, name := range mix.Members {
		fmt.Printf("%-18s", name)
		for pi := range policies {
			fmt.Printf(" %9.2f", cmp.Runs[pi].Metrics.Threads[ti].Slowdown())
		}
		fmt.Println()
	}

	fmt.Println("\nReading the table: equal partitioning squeezes high-BLP threads")
	fmt.Println("(lbm/milc rows), MCP crams all intensive threads into a channel")
	fmt.Println("subset (its worst rows explode), and DBP-TCM keeps the worst row —")
	fmt.Println("the system's unfairness — lowest of all policies.")
}
