// Quickstart: simulate one 8-core workload mix twice — unmanaged FR-FCFS
// versus Dynamic Bank Partitioning — and print the paper's two metrics
// (weighted speedup = throughput, maximum slowdown = unfairness).
package main

import (
	"fmt"
	"log"

	"dbpsim"
)

func main() {
	// A paper-style 8-core CMP: 2 channels × 8 banks, DDR3-1600 timing,
	// private L1/L2 per core.
	cfg := dbpsim.DefaultConfig(8)

	// The experiment harness measures per-thread IPC against cached
	// alone-run baselines (each benchmark on the idle machine).
	exp := dbpsim.NewExperiment(cfg, 200_000, 400_000)

	mix, ok := dbpsim.MixByName("W8-M1")
	if !ok {
		log.Fatal("mix not found")
	}
	fmt.Printf("mix %s: %v\n\n", mix.Name, mix.Members)

	baseline, err := exp.RunMix(mix, dbpsim.SchedFRFCFS, dbpsim.PartNone)
	if err != nil {
		log.Fatal(err)
	}
	dbp, err := exp.RunMix(mix, dbpsim.SchedFRFCFS, dbpsim.PartDBP)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("FR-FCFS (no partitioning): %s\n", baseline.Metrics)
	fmt.Printf("Dynamic Bank Partitioning: %s\n", dbp.Metrics)
	ws, fairness := dbp.Metrics.Delta(baseline.Metrics)
	fmt.Printf("\nDBP vs baseline: %+.1f%% throughput, %+.1f%% fairness\n", ws, fairness)
	fmt.Printf("(%d repartitioning decisions during the run)\n", dbp.Result.Repartitions)
}
