// Replay: drive the simulator from recorded trace files instead of the
// synthetic generators — the adoption path for externally captured traces
// (e.g. from a binary-instrumentation tool). The example records two
// synthetic traces to a temporary directory, replays them through the full
// system, and verifies the replayed run is bit-identical to the live one.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dbpsim"
	"dbpsim/internal/tracefile"
)

func main() {
	dir, err := os.MkdirTemp("", "dbpsim-replay")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Record: serialise 300k items of two benchmarks.
	names := []string{"libquantum-like", "milc-like"}
	paths := make([]string, len(names))
	for i, name := range names {
		spec, ok := dbpsim.BenchByName(name)
		if !ok {
			log.Fatalf("unknown benchmark %s", name)
		}
		paths[i] = filepath.Join(dir, name+".dbpt")
		f, err := os.Create(paths[i])
		if err != nil {
			log.Fatal(err)
		}
		if err := tracefile.Record(spec.New(7+int64(i)), 300_000, f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		info, _ := os.Stat(paths[i])
		fmt.Printf("recorded %-18s → %s (%d KiB)\n", name, filepath.Base(paths[i]), info.Size()>>10)
	}

	// 2. Replay: build Benches from the files and run the system.
	run := func(useFiles bool) dbpsim.Result {
		benches := make([]dbpsim.Bench, len(names))
		for i, name := range names {
			if useFiles {
				f, err := os.Open(paths[i])
				if err != nil {
					log.Fatal(err)
				}
				gen, _, err := tracefile.Generator(f)
				f.Close()
				if err != nil {
					log.Fatal(err)
				}
				benches[i] = dbpsim.Bench{Name: name, Gen: gen}
			} else {
				spec, _ := dbpsim.BenchByName(name)
				benches[i] = dbpsim.Bench{Name: name, Gen: spec.New(7 + int64(i))}
			}
		}
		cfg := dbpsim.DefaultConfig(2)
		cfg.Partition = dbpsim.PartDBP
		sys, err := dbpsim.NewSystem(cfg, benches)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(50_000, 100_000, 0)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	live := run(false)
	replayed := run(true)

	fmt.Println("\nlive vs replay:")
	for i := range live.Threads {
		fmt.Printf("  %-18s live IPC %.4f   replay IPC %.4f\n",
			live.Threads[i].Name, live.Threads[i].IPC, replayed.Threads[i].IPC)
		if live.Threads[i].IPC != replayed.Threads[i].IPC {
			log.Fatal("replay diverged from the live run!")
		}
	}
	fmt.Println("\nreplay is bit-identical to the live run — recorded traces are a")
	fmt.Println("faithful substitute, so externally captured traces plug in the same way.")
}
