// Energy: an extension study. Bank partitioning that preserves row-buffer
// locality also saves DRAM energy — every avoided row conflict is an
// avoided activate/precharge pair. This example compares policies on both
// performance and energy per access, and shows where the energy goes.
package main

import (
	"fmt"
	"log"

	"dbpsim"
)

func main() {
	cfg := dbpsim.DefaultConfig(8)
	exp := dbpsim.NewExperiment(cfg, 200_000, 400_000)
	mix, ok := dbpsim.MixByName("W8-M1")
	if !ok {
		log.Fatal("mix not found")
	}

	fmt.Printf("mix %s — performance and DRAM energy by policy\n\n", mix.Name)
	fmt.Printf("%-10s %7s %7s %10s %12s %14s\n",
		"policy", "WS", "MS", "nJ/access", "acts/kAcc", "Jain fairness")
	for _, p := range []dbpsim.PolicyPoint{
		{Label: "FRFCFS", Scheduler: dbpsim.SchedFRFCFS, Partition: dbpsim.PartNone},
		{Label: "EqualBP", Scheduler: dbpsim.SchedFRFCFS, Partition: dbpsim.PartEqual},
		{Label: "DBP", Scheduler: dbpsim.SchedFRFCFS, Partition: dbpsim.PartDBP},
		{Label: "DBP-TCM", Scheduler: dbpsim.SchedTCM, Partition: dbpsim.PartDBP},
	} {
		run, err := exp.RunMix(mix, p.Scheduler, p.Partition)
		if err != nil {
			log.Fatal(err)
		}
		transfers := run.Result.DRAM.Reads + run.Result.DRAM.Writes
		actsPerK := 0.0
		if transfers > 0 {
			actsPerK = 1000 * float64(run.Result.DRAM.Activates) / float64(transfers)
		}
		fmt.Printf("%-10s %7.3f %7.3f %10.2f %12.0f %14.3f\n",
			p.Label, run.Metrics.WeightedSpeedup, run.Metrics.MaxSlowdown,
			run.Result.EnergyPerAccess, actsPerK, run.Metrics.JainIndex())
	}
	fmt.Println("\nFewer activates per kilo-access = better preserved row locality")
	fmt.Println("= less activate energy. Partitioning helps performance and energy")
	fmt.Println("through the same mechanism: threads stop closing each other's rows.")
}
