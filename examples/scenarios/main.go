// Scenario walkthrough: load a committed phase-shifting timeline
// (scenarios/churn.json — tenants arriving and departing mid-run), run it
// under a static policy and under Dynamic Bank Partitioning, and show what
// the non-stationary results family adds: demand shifts, repartition
// reaction latency, and fairness over time.
//
// Run from the repo root:
//
//	go run ./examples/scenarios
//
// The timeline file format is documented field by field in
// docs/SCENARIOS.md; results for all five committed scenarios are in
// results/scenarios.md.
package main

import (
	"context"
	"fmt"
	"log"

	"dbpsim"
)

func main() {
	// A scenario is a declarative JSON document: per-thread phase
	// timelines on the scheduler-quantum grid. Load validates the schema
	// (scenario/v1, additive-only) and rejects unknown fields.
	sc, err := dbpsim.LoadScenario("scenarios/churn.json")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %q (%d threads, hash %.12s…)\n", sc.Name, len(sc.Threads), sc.Hash())
	for _, th := range sc.Threads {
		fmt.Printf("  %-11s:", th.Name)
		for _, ph := range th.Phases {
			fmt.Printf(" [%s %s]", ph.ID, benchOrIdle(ph.Bench))
		}
		fmt.Println()
	}
	fmt.Println()

	cfg := dbpsim.DefaultConfig(sc.Cores())
	exp := dbpsim.NewExperiment(cfg, 200_000, 400_000)

	for _, part := range []dbpsim.PartitionKind{dbpsim.PartEqual, dbpsim.PartDBP} {
		// A recorder captures the epoch series and the shift records;
		// scenario runs work without one, but then the reaction story is
		// lost.
		rec, err := dbpsim.NewRecorder(dbpsim.RecorderOptions{
			NumThreads: sc.Cores(),
			NumBanks:   cfg.Geometry.NumColors(),
		})
		if err != nil {
			log.Fatal(err)
		}
		run, err := dbpsim.RunScenario(context.Background(), exp, sc, dbpsim.SchedFRFCFS, part, rec, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s\n", part, run.Metrics)

		// Each Shift is one quantum boundary where the timeline changed
		// demand (a tenant woke, departed, spiked...). Reacted shifts
		// carry the repartition-reaction latency — the paper's dynamism
		// claim, measured.
		for _, s := range rec.Shifts() {
			if s.Reacted {
				fmt.Printf("  shift at cycle %8d (threads %v): repartitioned %d cycles later\n",
					s.Cycle, s.Threads, s.ReactionLatency)
			} else {
				fmt.Printf("  shift at cycle %8d (threads %v): never answered\n", s.Cycle, s.Threads)
			}
		}

		// The epoch series carries fairness *over time* (max_slowdown_est
		// per epoch) and the active-tenant count, not just end-of-run
		// aggregates.
		worst, at := 0.0, 0
		for _, e := range rec.Epochs() {
			if e.MaxSlowdownEst > worst {
				worst, at = e.MaxSlowdownEst, e.Index
			}
		}
		fmt.Printf("  worst epoch slowdown estimate %.2f (epoch %d of %d)\n\n", worst, at, len(rec.Epochs()))
	}

	fmt.Println("Equal partitioning never answers a shift; DBP re-cuts the bank")
	fmt.Println("masks within a quantum or two of each demand change. Try the other")
	fmt.Println("timelines in scenarios/, or write your own (docs/SCENARIOS.md).")
}

func benchOrIdle(bench string) string {
	if bench == "" || bench == "idle" {
		return "idle"
	}
	return bench
}
