// Command doccheck keeps docs/SCENARIOS.md honest: it collects every JSON
// object key used by the committed scenarios/*.json files and fails if any
// of them is not mentioned (as `key`) in the schema documentation. Run by
// `make lint`, so a new scenario field cannot land without its docs.
//
// Usage: go run ./scripts/doccheck
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

const schemaDoc = "docs/SCENARIOS.md"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "doccheck: FAIL:", err)
		os.Exit(1)
	}
}

func run() error {
	files, err := filepath.Glob("scenarios/*.json")
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("no committed scenario files under scenarios/ (run from the repo root)")
	}
	doc, err := os.ReadFile(schemaDoc)
	if err != nil {
		return err
	}
	text := string(doc)

	missing := map[string][]string{} // field -> files using it
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		var v any
		if err := json.Unmarshal(data, &v); err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		for _, key := range collectKeys(v, nil) {
			// Array-valued fields are documented as `key[]`.
			if !strings.Contains(text, "`"+key+"`") && !strings.Contains(text, "`"+key+"[]`") {
				missing[key] = append(missing[key], f)
			}
		}
	}
	if len(missing) > 0 {
		keys := make([]string, 0, len(missing))
		for k := range missing {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(os.Stderr, "doccheck: field %q (used by %s) is not documented in %s\n",
				k, strings.Join(missing[k], ", "), schemaDoc)
		}
		return fmt.Errorf("%d scenario field(s) missing from %s", len(missing), schemaDoc)
	}
	fmt.Printf("doccheck: ok (%d scenario files, every field documented in %s)\n", len(files), schemaDoc)
	return nil
}

// collectKeys walks a decoded JSON value and returns every object key,
// deduplicated.
func collectKeys(v any, acc []string) []string {
	switch t := v.(type) {
	case map[string]any:
		for k, child := range t {
			if !contains(acc, k) {
				acc = append(acc, k)
			}
			acc = collectKeys(child, acc)
		}
	case []any:
		for _, child := range t {
			acc = collectKeys(child, acc)
		}
	}
	return acc
}

func contains(s []string, x string) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
