// Command doccheck keeps the reference docs honest. Two checks, both run
// by `make lint`:
//
//   - Scenario schema: every JSON object key used by the committed
//     scenarios/*.json files must be mentioned (as `key`) in
//     docs/SCENARIOS.md, so a new scenario field cannot land without docs.
//   - Service surface: every dbpserved command-line flag (parsed out of
//     cmd/dbpserved/main.go) and every metric name literal in
//     internal/serve + internal/fleet + internal/tenant (test files
//     excluded) must appear somewhere in docs/SERVICE.md, docs/FLEET.md,
//     or README.md, so a new flag or metric cannot land undocumented.
//   - Tenant config schema: every JSON object key used by the committed
//     examples/tenants.json must be mentioned (as `key`) in
//     docs/SERVICE.md, so a new tenant-file field cannot land without
//     docs.
//   - Chaos points: every fault-injection point declared in
//     internal/chaos/chaos.go must be mentioned (as `point`) in the
//     service docs, so a new -chaos spec point cannot land undocumented.
//
// Usage: go run ./scripts/doccheck
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

const (
	schemaDoc  = "docs/SCENARIOS.md"
	daemonMain = "cmd/dbpserved/main.go"
)

// serviceDocs is the combined documentation surface for the daemon: a flag
// or metric counts as documented if any of these mentions it.
var serviceDocs = []string{"docs/SERVICE.md", "docs/FLEET.md", "README.md"}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "doccheck: FAIL:", err)
		os.Exit(1)
	}
}

func run() error {
	if err := checkScenarioSchema(); err != nil {
		return err
	}
	if err := checkServiceSurface(); err != nil {
		return err
	}
	if err := checkTenantConfig(); err != nil {
		return err
	}
	return checkChaosPoints()
}

func checkScenarioSchema() error {
	files, err := filepath.Glob("scenarios/*.json")
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("no committed scenario files under scenarios/ (run from the repo root)")
	}
	doc, err := os.ReadFile(schemaDoc)
	if err != nil {
		return err
	}
	text := string(doc)

	missing := map[string][]string{} // field -> files using it
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		var v any
		if err := json.Unmarshal(data, &v); err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		for _, key := range collectKeys(v, nil) {
			// Array-valued fields are documented as `key[]`.
			if !strings.Contains(text, "`"+key+"`") && !strings.Contains(text, "`"+key+"[]`") {
				missing[key] = append(missing[key], f)
			}
		}
	}
	if len(missing) > 0 {
		keys := make([]string, 0, len(missing))
		for k := range missing {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(os.Stderr, "doccheck: field %q (used by %s) is not documented in %s\n",
				k, strings.Join(missing[k], ", "), schemaDoc)
		}
		return fmt.Errorf("%d scenario field(s) missing from %s", len(missing), schemaDoc)
	}
	fmt.Printf("doccheck: ok (%d scenario files, every field documented in %s)\n", len(files), schemaDoc)
	return nil
}

var (
	flagDeclRe   = regexp.MustCompile(`fs\.(?:String|Bool|Int|Uint64|Duration)\("([a-z][a-z0-9-]*)"`)
	metricNameRe = regexp.MustCompile(`"(dbp(?:served|fleet)_[a-z_]+)"`)
)

func checkServiceSurface() error {
	var docs strings.Builder
	for _, f := range serviceDocs {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		docs.Write(data)
		docs.WriteByte('\n')
	}
	text := docs.String()
	where := strings.Join(serviceDocs, " / ")

	src, err := os.ReadFile(daemonMain)
	if err != nil {
		return err
	}
	var missing []string
	flags := map[string]bool{}
	for _, m := range flagDeclRe.FindAllStringSubmatch(string(src), -1) {
		flags[m[1]] = true
	}
	if len(flags) == 0 {
		return fmt.Errorf("no flag declarations found in %s (pattern drift?)", daemonMain)
	}
	for name := range flags {
		if !strings.Contains(text, "-"+name) {
			missing = append(missing, "flag -"+name)
		}
	}

	metrics := map[string]bool{}
	for _, dir := range []string{"internal/serve", "internal/fleet", "internal/tenant"} {
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			return err
		}
		for _, f := range files {
			if strings.HasSuffix(f, "_test.go") {
				continue
			}
			data, err := os.ReadFile(f)
			if err != nil {
				return err
			}
			for _, m := range metricNameRe.FindAllStringSubmatch(string(data), -1) {
				metrics[m[1]] = true
			}
		}
	}
	if len(metrics) == 0 {
		return fmt.Errorf("no metric name literals found under internal/serve + internal/fleet (pattern drift?)")
	}
	for name := range metrics {
		if !strings.Contains(text, name) {
			missing = append(missing, "metric "+name)
		}
	}

	if len(missing) > 0 {
		sort.Strings(missing)
		for _, m := range missing {
			fmt.Fprintf(os.Stderr, "doccheck: %s is not documented in %s\n", m, where)
		}
		return fmt.Errorf("%d service flag(s)/metric(s) missing from %s", len(missing), where)
	}
	fmt.Printf("doccheck: ok (%d flags, %d metrics, all documented in %s)\n",
		len(flags), len(metrics), where)
	return nil
}

// checkTenantConfig keeps the tenants-file docs honest: every key the
// committed example config uses must be documented in docs/SERVICE.md.
func checkTenantConfig() error {
	const example = "examples/tenants.json"
	const doc = "docs/SERVICE.md"
	data, err := os.ReadFile(example)
	if err != nil {
		return err
	}
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return fmt.Errorf("%s: %w", example, err)
	}
	docData, err := os.ReadFile(doc)
	if err != nil {
		return err
	}
	text := string(docData)
	var missing []string
	keys := collectKeys(v, nil)
	for _, key := range keys {
		if !strings.Contains(text, "`"+key+"`") {
			missing = append(missing, key)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		for _, k := range missing {
			fmt.Fprintf(os.Stderr, "doccheck: tenant config field %q (used by %s) is not documented in %s\n", k, example, doc)
		}
		return fmt.Errorf("%d tenant config field(s) missing from %s", len(missing), doc)
	}
	fmt.Printf("doccheck: ok (%s: every field documented in %s)\n", example, doc)
	return nil
}

var chaosPointRe = regexp.MustCompile(`(?m)^\t\w+\s+Point = "([a-z-]+)"`)

// checkChaosPoints keeps the fault-injection docs honest: every Point
// constant declared in internal/chaos/chaos.go must be mentioned (in
// backticks) somewhere in the service docs.
func checkChaosPoints() error {
	const src = "internal/chaos/chaos.go"
	data, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	points := map[string]bool{}
	for _, m := range chaosPointRe.FindAllStringSubmatch(string(data), -1) {
		points[m[1]] = true
	}
	if len(points) == 0 {
		return fmt.Errorf("no chaos Point declarations found in %s (pattern drift?)", src)
	}
	var docs strings.Builder
	for _, f := range serviceDocs {
		d, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		docs.Write(d)
		docs.WriteByte('\n')
	}
	text := docs.String()
	where := strings.Join(serviceDocs, " / ")
	var missing []string
	for name := range points {
		if !strings.Contains(text, "`"+name+"`") {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		for _, m := range missing {
			fmt.Fprintf(os.Stderr, "doccheck: chaos point %q is not documented in %s\n", m, where)
		}
		return fmt.Errorf("%d chaos point(s) missing from %s", len(missing), where)
	}
	fmt.Printf("doccheck: ok (%d chaos points, all documented in %s)\n", len(points), where)
	return nil
}

// collectKeys walks a decoded JSON value and returns every object key,
// deduplicated.
func collectKeys(v any, acc []string) []string {
	switch t := v.(type) {
	case map[string]any:
		for k, child := range t {
			if !contains(acc, k) {
				acc = append(acc, k)
			}
			acc = collectKeys(child, acc)
		}
	case []any:
		for _, child := range t {
			acc = collectKeys(child, acc)
		}
	}
	return acc
}

func contains(s []string, x string) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
