package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: dbpsim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPolicyCycles_DBP-8   	       1	 557222785 ns/op	       722.7 ns/simcycle	   1383679 simcycles/sec	  585200 B/op	     617 allocs/op
BenchmarkPolicyCycles_DBP-8   	       1	 600000000 ns/op	       750.0 ns/simcycle	   1300000 simcycles/sec	  585300 B/op	     618 allocs/op
BenchmarkPolicyCycles_DBP-8   	       1	 500000000 ns/op	       700.0 ns/simcycle	   1400000 simcycles/sec	  585100 B/op	     616 allocs/op
PASS
ok  	dbpsim	2.1s
goos: linux
goarch: amd64
pkg: dbpsim/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMeasureLoopSteadyState/ticking-8 	  686457	      1701 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	dbpsim/internal/sim	1.2s
`

func TestParseBench(t *testing.T) {
	ledger, err := parseBench(bufio.NewScanner(strings.NewReader(sampleOutput)))
	if err != nil {
		t.Fatal(err)
	}
	if ledger.Schema != schemaID {
		t.Fatalf("schema = %q", ledger.Schema)
	}
	if ledger.Goos != "linux" || ledger.Goarch != "amd64" || !strings.Contains(ledger.CPU, "Xeon") {
		t.Fatalf("header not captured: %+v", ledger)
	}
	if len(ledger.Benchmarks) != 2 {
		t.Fatalf("want 2 benchmarks, got %d: %+v", len(ledger.Benchmarks), ledger.Benchmarks)
	}
	// Sorted by name: MeasureLoop... before PolicyCycles...
	ml, pc := ledger.Benchmarks[0], ledger.Benchmarks[1]
	if ml.Name != "MeasureLoopSteadyState/ticking" || pc.Name != "PolicyCycles_DBP" {
		t.Fatalf("names: %q, %q", ml.Name, pc.Name)
	}
	if got := pc.Metrics["ns/op"]; got != 557222785 {
		t.Fatalf("median ns/op = %g, want middle sample", got)
	}
	if got := pc.Metrics["ns/simcycle"]; got != 722.7 {
		t.Fatalf("median ns/simcycle = %g", got)
	}
	if pc.Samples != 3 || ml.Samples != 1 {
		t.Fatalf("samples: %d, %d", pc.Samples, ml.Samples)
	}
	if got := ml.Metrics["allocs/op"]; got != 0 {
		t.Fatalf("allocs/op = %g, want 0", got)
	}
}

func TestNormalizeName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":          "Foo",
		"BenchmarkFoo":            "Foo",
		"BenchmarkFoo/sub-16":     "Foo/sub",
		"BenchmarkPolicy_DBP-8":   "Policy_DBP",
		"BenchmarkWeird-name-8":   "Weird-name",
		"BenchmarkTrailingDash-x": "TrailingDash-x",
	}
	for in, want := range cases {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %g", got)
	}
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %g", got)
	}
}
