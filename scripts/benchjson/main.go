// Command benchjson turns `go test -bench` output into the repo's
// machine-readable performance ledger (BENCH_<pr>.json) and compares two
// ledgers as a regression gate.
//
// Parse mode reads benchmark output on stdin, aggregates repeated runs
// (-count=N) per benchmark by median, and writes one JSON document:
//
//	go test -run='^$' -bench=. -benchmem -count=5 ./... | benchjson parse -pr 6 -o BENCH_6.json
//
// Compare mode reads a baseline and a head ledger and exits non-zero when
// the head regresses:
//
//	benchjson compare BENCH_6.json /tmp/bench-head.json
//
// Two gates apply per benchmark present in both ledgers:
//
//   - allocs/op is machine-independent and therefore strict: a zero-alloc
//     baseline must stay at zero, and a nonzero baseline may grow at most
//     5% plus an absolute slack of 8 allocations.
//   - time metrics (ns/op, ns/simcycle) are machine- and load-dependent, so
//     the threshold is deliberately lenient: default 35% slower
//     (-max-slower 0.35), overridable via the BENCH_MAX_SLOWER environment
//     variable for noisier hosts.
//
// Benchmarks present in only one ledger are reported but never fail the
// gate, so adding or retiring benchmarks does not require regenerating the
// baseline in the same commit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Ledger is the serialised form of one benchmark run set.
type Ledger struct {
	Schema string `json:"schema"`
	// PR tags which stacked change produced the baseline (0 = untagged).
	PR     int    `json:"pr,omitempty"`
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Benchmarks is sorted by name for stable diffs.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark's median metrics over its repeated runs.
type Benchmark struct {
	Name string `json:"name"`
	// Samples is how many repetitions the medians were taken over.
	Samples int `json:"samples"`
	// Metrics maps unit to median value: ns/op, B/op, allocs/op, plus any
	// custom b.ReportMetric units (ns/simcycle, simcycles/sec, ws, ms, ...).
	Metrics map[string]float64 `json:"metrics"`
}

const schemaID = "dbpsim-bench/v1"

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		parseMain(os.Args[2:])
	case "compare":
		compareMain(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchjson parse [-pr N] [-o FILE] < bench-output")
	fmt.Fprintln(os.Stderr, "       benchjson compare [-max-slower F] BASE NEW")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

func parseMain(args []string) {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	pr := fs.Int("pr", 0, "PR number to tag the ledger with")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)

	ledger, err := parseBench(bufio.NewScanner(os.Stdin))
	if err != nil {
		fatal(err)
	}
	ledger.PR = *pr
	raw, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		fatal(err)
	}
	raw = append(raw, '\n')
	if *out == "" {
		os.Stdout.Write(raw)
		return
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(ledger.Benchmarks), *out)
}

// parseBench consumes `go test -bench` text output. Repeated occurrences of
// one benchmark (from -count or multiple packages) are merged; each metric
// reports the median across samples.
func parseBench(sc *bufio.Scanner) (Ledger, error) {
	ledger := Ledger{Schema: schemaID}
	samples := map[string]map[string][]float64{}
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: ") && ledger.Goos == "":
			ledger.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: ") && ledger.Goarch == "":
			ledger.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: ") && ledger.CPU == "":
			ledger.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		if _, err := strconv.ParseUint(fields[1], 10, 64); err != nil {
			continue
		}
		name := normalizeName(fields[0])
		if samples[name] == nil {
			samples[name] = map[string][]float64{}
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			samples[name][unit] = append(samples[name][unit], v)
		}
	}
	if err := sc.Err(); err != nil {
		return Ledger{}, err
	}
	if len(samples) == 0 {
		return Ledger{}, fmt.Errorf("no benchmark lines found on stdin")
	}
	for name, metrics := range samples {
		b := Benchmark{Name: name, Metrics: map[string]float64{}}
		for unit, vals := range metrics {
			b.Metrics[unit] = median(vals)
			if len(vals) > b.Samples {
				b.Samples = len(vals)
			}
		}
		ledger.Benchmarks = append(ledger.Benchmarks, b)
	}
	sort.Slice(ledger.Benchmarks, func(i, j int) bool {
		return ledger.Benchmarks[i].Name < ledger.Benchmarks[j].Name
	})
	return ledger, nil
}

// normalizeName strips the Benchmark prefix and the -GOMAXPROCS suffix, so
// "BenchmarkPolicyCycles_DBP-8" becomes "PolicyCycles_DBP".
func normalizeName(s string) string {
	s = strings.TrimPrefix(s, "Benchmark")
	if i := strings.LastIndexByte(s, '-'); i > 0 {
		if _, err := strconv.Atoi(s[i+1:]); err == nil {
			s = s[:i]
		}
	}
	return s
}

func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Gate thresholds (see package comment).
const (
	defaultMaxSlower = 0.35
	allocRelSlack    = 0.05
	allocAbsSlack    = 8
)

func compareMain(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	maxSlower := fs.Float64("max-slower", envFloat("BENCH_MAX_SLOWER", defaultMaxSlower),
		"maximum tolerated fractional slowdown for time metrics")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	base, err := loadLedger(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	head, err := loadLedger(fs.Arg(1))
	if err != nil {
		fatal(err)
	}

	headBy := map[string]Benchmark{}
	for _, b := range head.Benchmarks {
		headBy[b.Name] = b
	}
	var failures []string
	matched := 0
	for _, bb := range base.Benchmarks {
		hb, ok := headBy[bb.Name]
		if !ok {
			fmt.Printf("~ %-40s only in baseline (ignored)\n", bb.Name)
			continue
		}
		delete(headBy, bb.Name)
		matched++
		for _, unit := range []string{"ns/op", "ns/simcycle"} {
			bv, okB := bb.Metrics[unit]
			hv, okH := hb.Metrics[unit]
			if !okB || !okH || bv <= 0 {
				continue
			}
			ratio := hv / bv
			verdict := "ok"
			if ratio > 1+*maxSlower {
				verdict = "REGRESSION"
				failures = append(failures, fmt.Sprintf("%s %s: %.4g -> %.4g (%.0f%% slower, limit %.0f%%)",
					bb.Name, unit, bv, hv, 100*(ratio-1), 100**maxSlower))
			}
			fmt.Printf("%s %-40s %-12s %10.4g -> %10.4g  (%+.1f%%)\n",
				mark(verdict), bb.Name, unit, bv, hv, 100*(ratio-1))
		}
		if bv, ok := bb.Metrics["allocs/op"]; ok {
			if hv, ok := hb.Metrics["allocs/op"]; ok {
				limit := bv*(1+allocRelSlack) + allocAbsSlack
				if bv == 0 {
					limit = 0 // zero-alloc benchmarks must stay zero-alloc
				}
				verdict := "ok"
				if hv > limit {
					verdict = "REGRESSION"
					failures = append(failures, fmt.Sprintf("%s allocs/op: %.0f -> %.0f (limit %.0f)",
						bb.Name, bv, hv, limit))
				}
				fmt.Printf("%s %-40s %-12s %10.0f -> %10.0f  (limit %.0f)\n",
					mark(verdict), bb.Name, "allocs/op", bv, hv, limit)
			}
		}
	}
	for name := range headBy {
		fmt.Printf("~ %-40s only in head (ignored)\n", name)
	}
	if matched == 0 {
		fatal(fmt.Errorf("no benchmarks in common between %s and %s", fs.Arg(0), fs.Arg(1)))
	}
	if len(failures) > 0 {
		fmt.Printf("\nbenchjson: %d regression(s) against %s:\n", len(failures), fs.Arg(0))
		for _, f := range failures {
			fmt.Println("  " + f)
		}
		os.Exit(1)
	}
	fmt.Printf("\nbenchjson: %d benchmarks within thresholds (time +%.0f%%, allocs +%.0f%%+%d; zero stays zero)\n",
		matched, 100**maxSlower, 100*allocRelSlack, allocAbsSlack)
}

func mark(verdict string) string {
	if verdict == "REGRESSION" {
		return "!"
	}
	return " "
}

func envFloat(name string, def float64) float64 {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			return v
		}
	}
	return def
}

func loadLedger(path string) (Ledger, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Ledger{}, err
	}
	var l Ledger
	if err := json.Unmarshal(raw, &l); err != nil {
		return Ledger{}, fmt.Errorf("%s: %w", path, err)
	}
	if l.Schema != schemaID {
		return Ledger{}, fmt.Errorf("%s: schema %q, want %q", path, l.Schema, schemaID)
	}
	return l, nil
}
