// Command chaossmoke is the CI chaos drill for dbpserved: it drives the
// real daemon binary through hostile scenarios — injected worker panics,
// abandoned runs, a SIGKILL mid-job with a restart — and asserts the
// resilience contracts hold end to end:
//
//   - -chaos without -chaos-allow is refused (fault injection can never be
//     enabled by a stray flag);
//   - a worker panic becomes a structured failed response while /healthz
//     stays 200 and later runs succeed, and ledgers produced under
//     injection are byte-identical to an uninjected daemon's;
//   - a sync run abandoned via ?timeout= is canceled, freeing its worker
//     for the next request within moments, with runs_canceled_total
//     incremented;
//   - after SIGKILL + restart over the same -journal-dir, finished async
//     jobs still answer GET /v1/runs/{id} with byte-identical ledgers
//     (and re-seed the result cache), while the job killed mid-run
//     reports failed with code "interrupted" and retryable=true.
//
// Usage: go run ./scripts/chaossmoke /path/to/dbpserved
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// quickBody is the fast reference run (milliseconds); bigBody's budget
// would take minutes uncanceled.
const (
	quickBody = `{"benchmarks": ["mcf-like", "gcc-like"], "warmup": 1000, "measure": 5000}`
	bigBody   = `{"benchmarks": ["mcf-like", "gcc-like"], "seed": 9001, "warmup": 0, "measure": 500000000}`
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chaos-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("chaos-smoke: OK")
}

func run(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: chaossmoke /path/to/dbpserved")
	}
	bin := args[0]

	if err := scenarioChaosGate(bin); err != nil {
		return fmt.Errorf("chaos gate: %w", err)
	}
	baseline, err := scenarioBaseline(bin)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	if err := scenarioPanic(bin, baseline); err != nil {
		return fmt.Errorf("panic isolation: %w", err)
	}
	if err := scenarioTimeout(bin); err != nil {
		return fmt.Errorf("timeout cancellation: %w", err)
	}
	if err := scenarioRestart(bin, baseline); err != nil {
		return fmt.Errorf("restart durability: %w", err)
	}
	return nil
}

// --- scenarios -----------------------------------------------------------

// scenarioChaosGate: -chaos without -chaos-allow must be refused at
// startup.
func scenarioChaosGate(bin string) error {
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-chaos", "panic=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		return fmt.Errorf("daemon accepted -chaos without -chaos-allow")
	}
	if !strings.Contains(string(out), "chaos-allow") {
		return fmt.Errorf("refusal does not name -chaos-allow: %s", out)
	}
	fmt.Println("chaos-smoke: gate: -chaos refused without -chaos-allow")
	return nil
}

// scenarioBaseline runs one clean daemon and captures the uninjected
// ledger every later scenario compares against.
func scenarioBaseline(bin string) ([]byte, error) {
	d, err := startDaemon(bin)
	if err != nil {
		return nil, err
	}
	defer d.kill()
	status, ledger, _, err := d.post("/v1/runs", quickBody)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("baseline run: status %d: %s", status, ledger)
	}
	if err := d.drain(); err != nil {
		return nil, err
	}
	fmt.Println("chaos-smoke: baseline: clean ledger captured")
	return ledger, nil
}

// scenarioPanic: with panic=2 injected, the clean first run is
// byte-identical to the baseline, the second run fails as a structured
// panic while the daemon stays healthy, and the third run succeeds.
func scenarioPanic(bin string, baseline []byte) error {
	d, err := startDaemon(bin, "-chaos", "panic=2", "-chaos-allow")
	if err != nil {
		return err
	}
	defer d.kill()

	status, ledger, _, err := d.post("/v1/runs", quickBody)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("run under injection: status %d: %s", status, ledger)
	}
	if string(ledger) != string(baseline) {
		return fmt.Errorf("ledger under injection differs from the uninjected baseline")
	}

	status, body, _, err := d.post("/v1/runs", seeded(9101))
	if err != nil {
		return err
	}
	if status != http.StatusInternalServerError {
		return fmt.Errorf("panicked run: status %d: %s", status, body)
	}
	var doc struct {
		Status string `json:"status"`
		Error  struct {
			Code      string `json:"code"`
			Retryable bool   `json:"retryable"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("panic body is not structured: %s", body)
	}
	if doc.Status != "failed" || doc.Error.Code != "panic" || doc.Error.Retryable {
		return fmt.Errorf("panic doc = %s", body)
	}

	if err := d.checkHealthz(); err != nil {
		return fmt.Errorf("healthz after panic: %w", err)
	}
	m, err := d.metrics()
	if err != nil {
		return err
	}
	if m["dbpserved_runs_panicked_total"] != 1 {
		return fmt.Errorf("runs_panicked_total = %v, want 1", m["dbpserved_runs_panicked_total"])
	}

	status, body, _, err = d.post("/v1/runs", seeded(9102))
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("run after panic: status %d: %s", status, body)
	}
	if err := d.drain(); err != nil {
		return err
	}
	fmt.Println("chaos-smoke: panic: isolated, healthz 200, ledgers byte-identical")
	return nil
}

// scenarioTimeout: a huge run abandoned via ?timeout= is canceled and the
// single worker is reusable right away.
func scenarioTimeout(bin string) error {
	d, err := startDaemon(bin, "-workers", "1")
	if err != nil {
		return err
	}
	defer d.kill()

	status, body, _, err := d.post("/v1/runs?timeout=300ms", bigBody)
	if err != nil {
		return err
	}
	if status != http.StatusGatewayTimeout {
		return fmt.Errorf("abandoned run: status %d: %s", status, body)
	}
	// The next quick run must get the (sole) worker promptly.
	status, body, _, err = d.post("/v1/runs?timeout=60s", quickBody)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("run after cancellation: status %d: %s", status, body)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		m, err := d.metrics()
		if err != nil {
			return err
		}
		if m["dbpserved_runs_canceled_total"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("runs_canceled_total never incremented")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := d.drain(); err != nil {
		return err
	}
	fmt.Println("chaos-smoke: timeout: abandoned run canceled, worker slot reused")
	return nil
}

// scenarioRestart: SIGKILL the daemon with one finished and one running
// async job, restart over the same journal, and require the finished job's
// ledger back byte-identical and the killed job reported interrupted.
func scenarioRestart(bin string, baseline []byte) error {
	jdir, err := os.MkdirTemp("", "dbpserved-chaos-journal")
	if err != nil {
		return err
	}
	defer os.RemoveAll(jdir)

	d, err := startDaemon(bin, "-journal-dir", jdir, "-workers", "1")
	if err != nil {
		return err
	}
	defer d.kill()

	// Async quick job → done.
	status, body, _, err := d.post("/v1/runs?async=1", quickBody)
	if err != nil {
		return err
	}
	if status != http.StatusAccepted {
		return fmt.Errorf("async submit: status %d: %s", status, body)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		return err
	}
	doneID := acc.ID
	ledger, err := d.pollDone(doneID, 60*time.Second)
	if err != nil {
		return err
	}
	if string(ledger) != string(baseline) {
		return fmt.Errorf("async ledger differs from baseline before the kill")
	}

	// Async huge job → running when we pull the plug.
	status, body, _, err = d.post("/v1/runs?async=1", bigBody)
	if err != nil {
		return err
	}
	if status != http.StatusAccepted {
		return fmt.Errorf("big async submit: status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		return err
	}
	lostID := acc.ID
	if err := d.waitStatus(lostID, "running", 15*time.Second); err != nil {
		return err
	}

	// The plug.
	if err := d.cmd.Process.Kill(); err != nil {
		return err
	}
	<-d.exited

	// Restart over the same journal.
	d2, err := startDaemon(bin, "-journal-dir", jdir, "-workers", "1")
	if err != nil {
		return err
	}
	defer d2.kill()

	status, body, err = d2.get("/v1/runs/" + doneID)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("restored job: status %d: %s", status, body)
	}
	if string(body) != string(ledger) {
		return fmt.Errorf("restored ledger differs from the pre-kill bytes")
	}

	status, body, err = d2.get("/v1/runs/" + lostID)
	if err != nil {
		return err
	}
	var doc struct {
		Status string `json:"status"`
		Error  struct {
			Code      string `json:"code"`
			Retryable bool   `json:"retryable"`
		} `json:"error"`
	}
	if status != http.StatusInternalServerError || json.Unmarshal(body, &doc) != nil {
		return fmt.Errorf("interrupted job: status %d: %s", status, body)
	}
	if doc.Status != "failed" || doc.Error.Code != "interrupted" || !doc.Error.Retryable {
		return fmt.Errorf("interrupted doc = %s", body)
	}

	// The journaled result re-seeds the cache: no re-simulation needed.
	status, body, cache, err := d2.post("/v1/runs", quickBody)
	if err != nil {
		return err
	}
	if status != http.StatusOK || cache != "hit" {
		return fmt.Errorf("restored cache: status %d, X-Cache %q (want 200/hit)", status, cache)
	}
	if string(body) != string(baseline) {
		return fmt.Errorf("restored cached ledger differs from baseline")
	}
	if err := d2.drain(); err != nil {
		return err
	}
	fmt.Println("chaos-smoke: restart: finished job preserved byte-identical, interrupted job retryable")
	return nil
}

func seeded(seed int) string {
	return fmt.Sprintf(`{"benchmarks": ["mcf-like", "gcc-like"], "seed": %d, "warmup": 1000, "measure": 5000}`, seed)
}

// --- daemon harness ------------------------------------------------------

type daemon struct {
	cmd    *exec.Cmd
	base   string
	tmp    string
	exited chan error
}

// startDaemon launches the binary on a free port and waits for it to
// report its bound address.
func startDaemon(bin string, extra ...string) (*daemon, error) {
	tmp, err := os.MkdirTemp("", "dbpserved-chaos")
	if err != nil {
		return nil, err
	}
	addrFile := filepath.Join(tmp, "addr")
	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile, "-log-json"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	cmd.Stdout = os.Stdout
	if err := cmd.Start(); err != nil {
		os.RemoveAll(tmp)
		return nil, err
	}
	d := &daemon{cmd: cmd, tmp: tmp, exited: make(chan error, 1)}
	go func() { d.exited <- cmd.Wait() }()

	deadline := time.Now().Add(15 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			d.base = "http://" + string(data)
			return d, nil
		}
		select {
		case err := <-d.exited:
			os.RemoveAll(tmp)
			return nil, fmt.Errorf("daemon exited before binding: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			os.RemoveAll(tmp)
			return nil, fmt.Errorf("daemon never wrote %s", addrFile)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// kill is the unconditional cleanup; safe after drain.
func (d *daemon) kill() {
	d.cmd.Process.Kill()
	os.RemoveAll(d.tmp)
}

// drain SIGTERMs the daemon and requires a clean exit.
func (d *daemon) drain() error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case err := <-d.exited:
		if err != nil {
			return fmt.Errorf("daemon exited non-zero after SIGTERM: %v", err)
		}
		return nil
	case <-time.After(60 * time.Second):
		return fmt.Errorf("daemon did not exit within 60s of SIGTERM")
	}
}

func (d *daemon) post(path, body string) (status int, data []byte, cache string, err error) {
	resp, err := http.Post(d.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(resp.Body)
	return resp.StatusCode, data, resp.Header.Get("X-Cache"), err
}

func (d *daemon) get(path string) (status int, data []byte, err error) {
	resp, err := http.Get(d.base + path)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

func (d *daemon) checkHealthz() error {
	status, data, err := d.get("/healthz")
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("status %d: %s", status, data)
	}
	return nil
}

// metrics scrapes /metrics into name{labels} → value.
func (d *daemon) metrics() (map[string]float64, error) {
	status, data, err := d.get("/metrics")
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("/metrics status %d", status)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		if v, err := strconv.ParseFloat(line[i+1:], 64); err == nil {
			out[line[:i]] = v
		}
	}
	return out, nil
}

// pollDone polls an async job until it answers 200 and returns the ledger.
func (d *daemon) pollDone(id string, timeout time.Duration) ([]byte, error) {
	deadline := time.Now().Add(timeout)
	for {
		status, data, err := d.get("/v1/runs/" + id)
		if err != nil {
			return nil, err
		}
		if status == http.StatusOK {
			return data, nil
		}
		if status != http.StatusAccepted {
			return nil, fmt.Errorf("job %s: status %d: %s", id, status, data)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s never finished", id)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// waitStatus polls until the job reports the wanted lifecycle status.
func (d *daemon) waitStatus(id, want string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		_, data, err := d.get("/v1/runs/" + id)
		if err != nil {
			return err
		}
		var st struct {
			Status string `json:"status"`
		}
		if json.Unmarshal(data, &st) == nil && st.Status == want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s never reached %q (last: %s)", id, want, data)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
