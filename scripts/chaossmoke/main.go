// Command chaossmoke is the CI chaos drill for dbpserved: it drives the
// real daemon binary through hostile scenarios — injected worker panics,
// abandoned runs, a SIGKILL mid-job with a restart — and asserts the
// resilience contracts hold end to end:
//
//   - -chaos without -chaos-allow is refused (fault injection can never be
//     enabled by a stray flag);
//   - a worker panic becomes a structured failed response while /healthz
//     stays 200 and later runs succeed, and ledgers produced under
//     injection are byte-identical to an uninjected daemon's;
//   - a sync run abandoned via ?timeout= is canceled, freeing its worker
//     for the next request within moments, with runs_canceled_total
//     incremented;
//   - after SIGKILL + restart over the same -journal-dir, finished async
//     jobs still answer GET /v1/runs/{id} with byte-identical ledgers
//     (and re-seed the result cache), while the job killed mid-run is
//     requeued at its original id instead of being lost;
//   - a job killed after writing checkpoints resumes from its latest
//     checkpoint on restart and finishes with a ledger byte-identical to
//     an uninterrupted reference run (resumed_runs_total = 1);
//   - when every checkpoint blob is corrupted before the restart, the
//     requeued job falls back to a clean cycle-0 rerun (checkpoint errors
//     counted, nothing resumed) and still produces the reference ledger.
//
// Usage: go run ./scripts/chaossmoke /path/to/dbpserved
//
// With CHAOSSMOKE_ARTIFACTS=<dir> set (CI does this), every scratch
// directory — journals, checkpoint blobs, per-daemon log files — is
// created under <dir> and left in place instead of being cleaned up, so a
// failing drill can be uploaded as a workflow artifact for post-mortem.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// quickBody is the fast reference run (milliseconds); bigBody's budget
// would take minutes uncanceled.
const (
	quickBody = `{"benchmarks": ["mcf-like", "gcc-like"], "warmup": 1000, "measure": 5000}`
	bigBody   = `{"benchmarks": ["mcf-like", "gcc-like"], "seed": 9001, "warmup": 0, "measure": 500000000}`
)

// artifactsDir, when non-empty (CHAOSSMOKE_ARTIFACTS), roots every scratch
// directory under one path and disables cleanup so CI can upload the whole
// post-mortem — journals, checkpoints, daemon logs — on failure.
var artifactsDir = os.Getenv("CHAOSSMOKE_ARTIFACTS")

// scratchDir creates a scenario scratch directory, under artifactsDir when
// artifacts are being kept.
func scratchDir(pattern string) (string, error) {
	if artifactsDir == "" {
		return os.MkdirTemp("", pattern)
	}
	if err := os.MkdirAll(artifactsDir, 0o755); err != nil {
		return "", err
	}
	return os.MkdirTemp(artifactsDir, pattern)
}

// scrub removes a scratch directory — a no-op when artifacts are kept.
func scrub(path string) {
	if artifactsDir == "" {
		os.RemoveAll(path)
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chaos-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("chaos-smoke: OK")
}

func run(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: chaossmoke /path/to/dbpserved")
	}
	bin := args[0]

	if err := scenarioChaosGate(bin); err != nil {
		return fmt.Errorf("chaos gate: %w", err)
	}
	baseline, err := scenarioBaseline(bin)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	if err := scenarioPanic(bin, baseline); err != nil {
		return fmt.Errorf("panic isolation: %w", err)
	}
	if err := scenarioTimeout(bin); err != nil {
		return fmt.Errorf("timeout cancellation: %w", err)
	}
	if err := scenarioRestart(bin, baseline); err != nil {
		return fmt.Errorf("restart durability: %w", err)
	}
	reference, err := scenarioResumeReference(bin)
	if err != nil {
		return fmt.Errorf("resume reference: %w", err)
	}
	if err := scenarioResume(bin, reference); err != nil {
		return fmt.Errorf("checkpoint resume: %w", err)
	}
	if err := scenarioCorruptCheckpoint(bin, reference); err != nil {
		return fmt.Errorf("corrupt checkpoint: %w", err)
	}
	return nil
}

// --- scenarios -----------------------------------------------------------

// scenarioChaosGate: -chaos without -chaos-allow must be refused at
// startup.
func scenarioChaosGate(bin string) error {
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-chaos", "panic=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		return fmt.Errorf("daemon accepted -chaos without -chaos-allow")
	}
	if !strings.Contains(string(out), "chaos-allow") {
		return fmt.Errorf("refusal does not name -chaos-allow: %s", out)
	}
	fmt.Println("chaos-smoke: gate: -chaos refused without -chaos-allow")
	return nil
}

// scenarioBaseline runs one clean daemon and captures the uninjected
// ledger every later scenario compares against.
func scenarioBaseline(bin string) ([]byte, error) {
	d, err := startDaemon(bin)
	if err != nil {
		return nil, err
	}
	defer d.kill()
	status, ledger, _, err := d.post("/v1/runs", quickBody)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("baseline run: status %d: %s", status, ledger)
	}
	if err := d.drain(); err != nil {
		return nil, err
	}
	fmt.Println("chaos-smoke: baseline: clean ledger captured")
	return ledger, nil
}

// scenarioPanic: with panic=2 injected, the clean first run is
// byte-identical to the baseline, the second run fails as a structured
// panic while the daemon stays healthy, and the third run succeeds.
func scenarioPanic(bin string, baseline []byte) error {
	d, err := startDaemon(bin, "-chaos", "panic=2", "-chaos-allow")
	if err != nil {
		return err
	}
	defer d.kill()

	status, ledger, _, err := d.post("/v1/runs", quickBody)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("run under injection: status %d: %s", status, ledger)
	}
	if string(ledger) != string(baseline) {
		return fmt.Errorf("ledger under injection differs from the uninjected baseline")
	}

	status, body, _, err := d.post("/v1/runs", seeded(9101))
	if err != nil {
		return err
	}
	if status != http.StatusInternalServerError {
		return fmt.Errorf("panicked run: status %d: %s", status, body)
	}
	var doc struct {
		Status string `json:"status"`
		Error  struct {
			Code      string `json:"code"`
			Retryable bool   `json:"retryable"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("panic body is not structured: %s", body)
	}
	if doc.Status != "failed" || doc.Error.Code != "panic" || doc.Error.Retryable {
		return fmt.Errorf("panic doc = %s", body)
	}

	if err := d.checkHealthz(); err != nil {
		return fmt.Errorf("healthz after panic: %w", err)
	}
	m, err := d.metrics()
	if err != nil {
		return err
	}
	if m["dbpserved_runs_panicked_total"] != 1 {
		return fmt.Errorf("runs_panicked_total = %v, want 1", m["dbpserved_runs_panicked_total"])
	}

	status, body, _, err = d.post("/v1/runs", seeded(9102))
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("run after panic: status %d: %s", status, body)
	}
	if err := d.drain(); err != nil {
		return err
	}
	fmt.Println("chaos-smoke: panic: isolated, healthz 200, ledgers byte-identical")
	return nil
}

// scenarioTimeout: a huge run abandoned via ?timeout= is canceled and the
// single worker is reusable right away.
func scenarioTimeout(bin string) error {
	d, err := startDaemon(bin, "-workers", "1")
	if err != nil {
		return err
	}
	defer d.kill()

	status, body, _, err := d.post("/v1/runs?timeout=300ms", bigBody)
	if err != nil {
		return err
	}
	if status != http.StatusGatewayTimeout {
		return fmt.Errorf("abandoned run: status %d: %s", status, body)
	}
	// The next quick run must get the (sole) worker promptly.
	status, body, _, err = d.post("/v1/runs?timeout=60s", quickBody)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("run after cancellation: status %d: %s", status, body)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		m, err := d.metrics()
		if err != nil {
			return err
		}
		if m["dbpserved_runs_canceled_total"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("runs_canceled_total never incremented")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := d.drain(); err != nil {
		return err
	}
	fmt.Println("chaos-smoke: timeout: abandoned run canceled, worker slot reused")
	return nil
}

// scenarioRestart: SIGKILL the daemon with one finished and one running
// async job, restart over the same journal, and require the finished job's
// ledger back byte-identical and the killed job requeued at its original id
// (the journaled submit record carries the request body) instead of being
// reported as a terminal failure.
func scenarioRestart(bin string, baseline []byte) error {
	jdir, err := scratchDir("dbpserved-chaos-journal")
	if err != nil {
		return err
	}
	defer scrub(jdir)

	d, err := startDaemon(bin, "-journal-dir", jdir, "-workers", "1")
	if err != nil {
		return err
	}
	defer d.kill()

	// Async quick job → done.
	status, body, _, err := d.post("/v1/runs?async=1", quickBody)
	if err != nil {
		return err
	}
	if status != http.StatusAccepted {
		return fmt.Errorf("async submit: status %d: %s", status, body)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		return err
	}
	doneID := acc.ID
	ledger, err := d.pollDone(doneID, 60*time.Second)
	if err != nil {
		return err
	}
	if string(ledger) != string(baseline) {
		return fmt.Errorf("async ledger differs from baseline before the kill")
	}

	// Async huge job → running when we pull the plug.
	status, body, _, err = d.post("/v1/runs?async=1", bigBody)
	if err != nil {
		return err
	}
	if status != http.StatusAccepted {
		return fmt.Errorf("big async submit: status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		return err
	}
	lostID := acc.ID
	if err := d.waitStatus(lostID, "running", 15*time.Second); err != nil {
		return err
	}

	// The plug.
	if err := d.cmd.Process.Kill(); err != nil {
		return err
	}
	<-d.exited

	// Restart over the same journal. The short drain grace keeps the final
	// SIGTERM bounded: the requeued multi-minute job is drain-canceled after
	// 2s (checkpoint-then-release) instead of running to completion.
	d2, err := startDaemon(bin, "-journal-dir", jdir, "-workers", "1", "-drain-grace", "2s")
	if err != nil {
		return err
	}
	defer d2.kill()

	status, body, err = d2.get("/v1/runs/" + doneID)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("restored job: status %d: %s", status, body)
	}
	if string(body) != string(ledger) {
		return fmt.Errorf("restored ledger differs from the pre-kill bytes")
	}

	// The killed job is requeued live at its original id, not failed.
	status, body, err = d2.get("/v1/runs/" + lostID)
	if err != nil {
		return err
	}
	var doc struct {
		Status string `json:"status"`
	}
	if status != http.StatusAccepted || json.Unmarshal(body, &doc) != nil {
		return fmt.Errorf("requeued job: status %d: %s", status, body)
	}
	if doc.Status != "queued" && doc.Status != "running" {
		return fmt.Errorf("requeued job status = %q, want queued or running: %s", doc.Status, body)
	}

	// The journaled result re-seeds the cache: no re-simulation needed.
	status, body, cache, err := d2.post("/v1/runs", quickBody)
	if err != nil {
		return err
	}
	if status != http.StatusOK || cache != "hit" {
		return fmt.Errorf("restored cache: status %d, X-Cache %q (want 200/hit)", status, cache)
	}
	if string(body) != string(baseline) {
		return fmt.Errorf("restored cached ledger differs from baseline")
	}
	if err := d2.drain(); err != nil {
		return err
	}
	fmt.Println("chaos-smoke: restart: finished job preserved byte-identical, killed job requeued")
	return nil
}

// resumeBody is the prop for the checkpoint scenarios: big enough to write
// several checkpoints before the kill (with -checkpoint-interval 1 the
// effective period is one 250k-cycle scheduler quantum), small enough that
// the resumed remainder finishes in seconds.
const resumeBody = `{"benchmarks": ["mcf-like", "gcc-like"], "seed": 9301, "warmup": 0, "measure": 2000000}`

// scenarioResumeReference captures the uninterrupted ledger for resumeBody
// on a journal-less daemon — the byte-identity yardstick for both
// checkpoint scenarios.
func scenarioResumeReference(bin string) ([]byte, error) {
	d, err := startDaemon(bin)
	if err != nil {
		return nil, err
	}
	defer d.kill()
	status, ledger, _, err := d.post("/v1/runs?timeout=120s", resumeBody)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("reference run: status %d: %s", status, ledger)
	}
	if err := d.drain(); err != nil {
		return nil, err
	}
	fmt.Println("chaos-smoke: resume reference: uninterrupted ledger captured")
	return ledger, nil
}

// scenarioResume is the headline checkpoint drill: kill the daemon after it
// has journaled checkpoints for a running job, restart over the same
// journal, and require the job to resume from its latest checkpoint and
// finish with the reference run's exact bytes.
func scenarioResume(bin string, reference []byte) error {
	jdir, err := scratchDir("dbpserved-chaos-ckpt")
	if err != nil {
		return err
	}
	defer scrub(jdir)

	d, id, err := startInterruptedRun(bin, jdir, 2)
	if err != nil {
		return err
	}
	d.kill()
	<-d.exited

	d2, err := startDaemon(bin, "-journal-dir", jdir, "-workers", "1", "-checkpoint-interval", "1")
	if err != nil {
		return err
	}
	defer d2.kill()
	ledger, err := d2.pollDone(id, 180*time.Second)
	if err != nil {
		return fmt.Errorf("resumed job: %w", err)
	}
	if string(ledger) != string(reference) {
		return fmt.Errorf("resumed ledger differs from the uninterrupted reference (%d vs %d bytes)", len(ledger), len(reference))
	}
	m, err := d2.metrics()
	if err != nil {
		return err
	}
	if m["dbpserved_resumed_runs_total"] != 1 {
		return fmt.Errorf("resumed_runs_total = %v, want 1", m["dbpserved_resumed_runs_total"])
	}
	if err := d2.drain(); err != nil {
		return err
	}
	fmt.Println("chaos-smoke: resume: killed mid-run, resumed from checkpoint, ledger byte-identical")
	return nil
}

// scenarioCorruptCheckpoint: same kill, but every checkpoint blob is
// corrupted before the restart. The requeued job must fall back to a clean
// cycle-0 rerun — checkpoint errors counted, nothing resumed — and still
// produce the reference ledger.
func scenarioCorruptCheckpoint(bin string, reference []byte) error {
	jdir, err := scratchDir("dbpserved-chaos-ckpt-corrupt")
	if err != nil {
		return err
	}
	defer scrub(jdir)

	d, id, err := startInterruptedRun(bin, jdir, 1)
	if err != nil {
		return err
	}
	d.kill()
	<-d.exited

	ckptDir := filepath.Join(jdir, "checkpoints")
	blobs, err := os.ReadDir(ckptDir)
	if err != nil {
		return err
	}
	if len(blobs) == 0 {
		return fmt.Errorf("no checkpoint blobs on disk despite checkpoints_written > 0")
	}
	for _, e := range blobs {
		if err := os.WriteFile(filepath.Join(ckptDir, e.Name()), []byte("corrupt"), 0o644); err != nil {
			return err
		}
	}

	d2, err := startDaemon(bin, "-journal-dir", jdir, "-workers", "1", "-checkpoint-interval", "1")
	if err != nil {
		return err
	}
	defer d2.kill()
	ledger, err := d2.pollDone(id, 180*time.Second)
	if err != nil {
		return fmt.Errorf("rerun job: %w", err)
	}
	if string(ledger) != string(reference) {
		return fmt.Errorf("cycle-0 rerun ledger differs from the reference (%d vs %d bytes)", len(ledger), len(reference))
	}
	m, err := d2.metrics()
	if err != nil {
		return err
	}
	if m["dbpserved_resumed_runs_total"] != 0 {
		return fmt.Errorf("resumed_runs_total = %v, want 0 (corrupt blob must not resume)", m["dbpserved_resumed_runs_total"])
	}
	if m["dbpserved_checkpoint_errors_total"] < 1 {
		return fmt.Errorf("checkpoint_errors_total = %v, want >= 1", m["dbpserved_checkpoint_errors_total"])
	}
	if err := d2.drain(); err != nil {
		return err
	}
	fmt.Println("chaos-smoke: corrupt checkpoint: clean cycle-0 fallback, ledger byte-identical")
	return nil
}

// startInterruptedRun launches a checkpointing daemon over jdir, submits
// resumeBody async, waits until at least minCkpts checkpoints are written,
// and returns the still-running daemon plus the job id — ready for the
// caller to pull the plug.
func startInterruptedRun(bin, jdir string, minCkpts float64) (*daemon, string, error) {
	d, err := startDaemon(bin, "-journal-dir", jdir, "-workers", "1", "-checkpoint-interval", "1")
	if err != nil {
		return nil, "", err
	}
	status, body, _, err := d.post("/v1/runs?async=1", resumeBody)
	if err != nil {
		d.kill()
		return nil, "", err
	}
	if status != http.StatusAccepted {
		d.kill()
		return nil, "", fmt.Errorf("async submit: status %d: %s", status, body)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		d.kill()
		return nil, "", err
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		m, err := d.metrics()
		if err != nil {
			d.kill()
			return nil, "", err
		}
		if m["dbpserved_checkpoints_written_total"] >= minCkpts {
			return d, acc.ID, nil
		}
		select {
		case <-d.exited:
			return nil, "", fmt.Errorf("daemon exited while waiting for checkpoints")
		default:
		}
		if time.Now().After(deadline) {
			d.kill()
			return nil, "", fmt.Errorf("checkpoints_written never reached %v", minCkpts)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func seeded(seed int) string {
	return fmt.Sprintf(`{"benchmarks": ["mcf-like", "gcc-like"], "seed": %d, "warmup": 1000, "measure": 5000}`, seed)
}

// --- daemon harness ------------------------------------------------------

type daemon struct {
	cmd    *exec.Cmd
	base   string
	tmp    string
	exited chan error
}

// startDaemon launches the binary on a free port and waits for it to
// report its bound address. When artifacts are kept, the daemon's output
// is additionally teed to a daemon.log in its scratch directory.
func startDaemon(bin string, extra ...string) (*daemon, error) {
	tmp, err := scratchDir("dbpserved-chaos")
	if err != nil {
		return nil, err
	}
	addrFile := filepath.Join(tmp, "addr")
	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile, "-log-json"}, extra...)
	cmd := exec.Command(bin, args...)
	var logFile *os.File
	var sink io.Writer = os.Stderr
	if artifactsDir != "" {
		logFile, err = os.Create(filepath.Join(tmp, "daemon.log"))
		if err != nil {
			scrub(tmp)
			return nil, err
		}
		sink = io.MultiWriter(os.Stderr, logFile)
	}
	cmd.Stderr = sink
	cmd.Stdout = sink
	if err := cmd.Start(); err != nil {
		if logFile != nil {
			logFile.Close()
		}
		scrub(tmp)
		return nil, err
	}
	d := &daemon{cmd: cmd, tmp: tmp, exited: make(chan error, 1)}
	go func() {
		err := cmd.Wait()
		if logFile != nil {
			logFile.Close()
		}
		d.exited <- err
	}()

	deadline := time.Now().Add(15 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			d.base = "http://" + string(data)
			return d, nil
		}
		select {
		case err := <-d.exited:
			scrub(tmp)
			return nil, fmt.Errorf("daemon exited before binding: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			scrub(tmp)
			return nil, fmt.Errorf("daemon never wrote %s", addrFile)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// kill is the unconditional cleanup; safe after drain.
func (d *daemon) kill() {
	d.cmd.Process.Kill()
	scrub(d.tmp)
}

// drain SIGTERMs the daemon and requires a clean exit.
func (d *daemon) drain() error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case err := <-d.exited:
		if err != nil {
			return fmt.Errorf("daemon exited non-zero after SIGTERM: %v", err)
		}
		return nil
	case <-time.After(60 * time.Second):
		return fmt.Errorf("daemon did not exit within 60s of SIGTERM")
	}
}

func (d *daemon) post(path, body string) (status int, data []byte, cache string, err error) {
	resp, err := http.Post(d.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(resp.Body)
	return resp.StatusCode, data, resp.Header.Get("X-Cache"), err
}

func (d *daemon) get(path string) (status int, data []byte, err error) {
	resp, err := http.Get(d.base + path)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

func (d *daemon) checkHealthz() error {
	status, data, err := d.get("/healthz")
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("status %d: %s", status, data)
	}
	return nil
}

// metrics scrapes /metrics into name{labels} → value.
func (d *daemon) metrics() (map[string]float64, error) {
	status, data, err := d.get("/metrics")
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("/metrics status %d", status)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		if v, err := strconv.ParseFloat(line[i+1:], 64); err == nil {
			out[line[:i]] = v
		}
	}
	return out, nil
}

// pollDone polls an async job until it answers 200 and returns the ledger.
func (d *daemon) pollDone(id string, timeout time.Duration) ([]byte, error) {
	deadline := time.Now().Add(timeout)
	for {
		status, data, err := d.get("/v1/runs/" + id)
		if err != nil {
			return nil, err
		}
		if status == http.StatusOK {
			return data, nil
		}
		if status != http.StatusAccepted {
			return nil, fmt.Errorf("job %s: status %d: %s", id, status, data)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s never finished", id)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// waitStatus polls until the job reports the wanted lifecycle status.
func (d *daemon) waitStatus(id, want string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		_, data, err := d.get("/v1/runs/" + id)
		if err != nil {
			return err
		}
		var st struct {
			Status string `json:"status"`
		}
		if json.Unmarshal(data, &st) == nil && st.Status == want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s never reached %q (last: %s)", id, want, data)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
