// Command chaossmoke is the CI chaos drill for dbpserved: it drives the
// real daemon binary through hostile scenarios — injected worker panics,
// abandoned runs, a SIGKILL mid-job with a restart — and asserts the
// resilience contracts hold end to end:
//
//   - -chaos without -chaos-allow is refused (fault injection can never be
//     enabled by a stray flag);
//   - a worker panic becomes a structured failed response while /healthz
//     stays 200 and later runs succeed, and ledgers produced under
//     injection are byte-identical to an uninjected daemon's;
//   - a sync run abandoned via ?timeout= is canceled, freeing its worker
//     for the next request within moments, with runs_canceled_total
//     incremented;
//   - after SIGKILL + restart over the same -journal-dir, finished async
//     jobs still answer GET /v1/runs/{id} with byte-identical ledgers
//     (and re-seed the result cache), while the job killed mid-run is
//     requeued at its original id instead of being lost;
//   - a job killed after writing checkpoints resumes from its latest
//     checkpoint on restart and finishes with a ledger byte-identical to
//     an uninterrupted reference run (resumed_runs_total = 1);
//   - when every checkpoint blob is corrupted before the restart, the
//     requeued job falls back to a clean cycle-0 rerun (checkpoint errors
//     counted, nothing resumed) and still produces the reference ledger;
//   - under a -tenants config, a greedy batch tenant flooding the queue
//     cannot starve an interactive tenant (weighted-fair queueing), its
//     over-budget submission is refused with the billed estimate plus a
//     Retry-After refill hint, and a SIGKILL + restart preserves both the
//     per-tenant attribution of interrupted jobs and the spent quota.
//
// Usage: go run ./scripts/chaossmoke [-run REGEX] /path/to/dbpserved
// (-run filters scenarios by name, e.g. -run tenants)
//
// With CHAOSSMOKE_ARTIFACTS=<dir> set (CI does this), every scratch
// directory — journals, checkpoint blobs, per-daemon log files — is
// created under <dir> and left in place instead of being cleaned up, so a
// failing drill can be uploaded as a workflow artifact for post-mortem.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// quickBody is the fast reference run (milliseconds); bigBody's budget
// would take minutes uncanceled.
const (
	quickBody = `{"benchmarks": ["mcf-like", "gcc-like"], "warmup": 1000, "measure": 5000}`
	bigBody   = `{"benchmarks": ["mcf-like", "gcc-like"], "seed": 9001, "warmup": 0, "measure": 500000000}`
)

// artifactsDir, when non-empty (CHAOSSMOKE_ARTIFACTS), roots every scratch
// directory under one path and disables cleanup so CI can upload the whole
// post-mortem — journals, checkpoints, daemon logs — on failure.
var artifactsDir = os.Getenv("CHAOSSMOKE_ARTIFACTS")

// scratchDir creates a scenario scratch directory, under artifactsDir when
// artifacts are being kept.
func scratchDir(pattern string) (string, error) {
	if artifactsDir == "" {
		return os.MkdirTemp("", pattern)
	}
	if err := os.MkdirAll(artifactsDir, 0o755); err != nil {
		return "", err
	}
	return os.MkdirTemp(artifactsDir, pattern)
}

// scrub removes a scratch directory — a no-op when artifacts are kept.
func scrub(path string) {
	if artifactsDir == "" {
		os.RemoveAll(path)
	}
}

// artifactHint names the kept scratch directory in failure messages when
// artifacts are retained, so the post-mortem starts at the right log.
func artifactHint(tmp string) string {
	if artifactsDir == "" {
		return ""
	}
	return fmt.Sprintf(" (daemon.log kept under %s)", tmp)
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chaos-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("chaos-smoke: OK")
}

func run(args []string) error {
	fs := flag.NewFlagSet("chaossmoke", flag.ContinueOnError)
	runPat := fs.String("run", "", "only run scenarios whose name matches this regexp")
	timeout := fs.Duration("timeout", 10*time.Minute, "hard deadline for the whole drill; a hung scenario fails instead of wedging CI (0 = no deadline)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: chaossmoke [-run REGEX] [-timeout D] /path/to/dbpserved")
	}
	bin := fs.Arg(0)
	if *timeout > 0 {
		// A watchdog, not a context: scenarios block in straight-line HTTP
		// and process waits, so a wedged daemon would otherwise hang the
		// drill (and its CI job) forever.
		time.AfterFunc(*timeout, func() {
			fmt.Fprintf(os.Stderr, "chaos-smoke: FAIL: drill exceeded -timeout %v; a scenario is wedged\n", *timeout)
			os.Exit(1)
		})
	}
	var filter *regexp.Regexp
	if *runPat != "" {
		re, err := regexp.Compile(*runPat)
		if err != nil {
			return fmt.Errorf("bad -run pattern: %w", err)
		}
		filter = re
	}

	// Shared prerequisites (an uninjected baseline ledger, an uninterrupted
	// resume reference) are computed lazily so a -run filter skips the ones
	// its scenarios never need.
	var baseline, reference []byte
	getBaseline := func() ([]byte, error) {
		if baseline == nil {
			b, err := scenarioBaseline(bin)
			if err != nil {
				return nil, fmt.Errorf("baseline: %w", err)
			}
			baseline = b
		}
		return baseline, nil
	}
	getReference := func() ([]byte, error) {
		if reference == nil {
			r, err := scenarioResumeReference(bin)
			if err != nil {
				return nil, fmt.Errorf("resume reference: %w", err)
			}
			reference = r
		}
		return reference, nil
	}

	scenarios := []struct {
		name string
		fn   func() error
	}{
		{"chaos-gate", func() error { return scenarioChaosGate(bin) }},
		{"panic-isolation", func() error {
			b, err := getBaseline()
			if err != nil {
				return err
			}
			return scenarioPanic(bin, b)
		}},
		{"timeout-cancellation", func() error { return scenarioTimeout(bin) }},
		{"restart-durability", func() error {
			b, err := getBaseline()
			if err != nil {
				return err
			}
			return scenarioRestart(bin, b)
		}},
		{"checkpoint-resume", func() error {
			r, err := getReference()
			if err != nil {
				return err
			}
			return scenarioResume(bin, r)
		}},
		{"corrupt-checkpoint", func() error {
			r, err := getReference()
			if err != nil {
				return err
			}
			return scenarioCorruptCheckpoint(bin, r)
		}},
		{"tenants", func() error { return scenarioTenants(bin) }},
	}
	ran := 0
	for _, sc := range scenarios {
		if filter != nil && !filter.MatchString(sc.name) {
			continue
		}
		ran++
		fmt.Println("chaos-smoke: scenario", sc.name)
		if err := sc.fn(); err != nil {
			return fmt.Errorf("%s: %w", sc.name, err)
		}
	}
	if ran == 0 {
		return fmt.Errorf("-run %q matched no scenarios", *runPat)
	}
	return nil
}

// --- scenarios -----------------------------------------------------------

// scenarioChaosGate: -chaos without -chaos-allow must be refused at
// startup.
func scenarioChaosGate(bin string) error {
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-chaos", "panic=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		return fmt.Errorf("daemon accepted -chaos without -chaos-allow")
	}
	if !strings.Contains(string(out), "chaos-allow") {
		return fmt.Errorf("refusal does not name -chaos-allow: %s", out)
	}
	fmt.Println("chaos-smoke: gate: -chaos refused without -chaos-allow")
	return nil
}

// scenarioBaseline runs one clean daemon and captures the uninjected
// ledger every later scenario compares against.
func scenarioBaseline(bin string) ([]byte, error) {
	d, err := startDaemon(bin)
	if err != nil {
		return nil, err
	}
	defer d.kill()
	status, ledger, _, err := d.post("/v1/runs", quickBody)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("baseline run: status %d: %s", status, ledger)
	}
	if err := d.drain(); err != nil {
		return nil, err
	}
	fmt.Println("chaos-smoke: baseline: clean ledger captured")
	return ledger, nil
}

// scenarioPanic: with panic=2 injected, the clean first run is
// byte-identical to the baseline, the second run fails as a structured
// panic while the daemon stays healthy, and the third run succeeds.
func scenarioPanic(bin string, baseline []byte) error {
	d, err := startDaemon(bin, "-chaos", "panic=2", "-chaos-allow")
	if err != nil {
		return err
	}
	defer d.kill()

	status, ledger, _, err := d.post("/v1/runs", quickBody)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("run under injection: status %d: %s", status, ledger)
	}
	if string(ledger) != string(baseline) {
		return fmt.Errorf("ledger under injection differs from the uninjected baseline")
	}

	status, body, _, err := d.post("/v1/runs", seeded(9101))
	if err != nil {
		return err
	}
	if status != http.StatusInternalServerError {
		return fmt.Errorf("panicked run: status %d: %s", status, body)
	}
	var doc struct {
		Status string `json:"status"`
		Error  struct {
			Code      string `json:"code"`
			Retryable bool   `json:"retryable"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("panic body is not structured: %s", body)
	}
	if doc.Status != "failed" || doc.Error.Code != "panic" || doc.Error.Retryable {
		return fmt.Errorf("panic doc = %s", body)
	}

	if err := d.checkHealthz(); err != nil {
		return fmt.Errorf("healthz after panic: %w", err)
	}
	m, err := d.metrics()
	if err != nil {
		return err
	}
	if m["dbpserved_runs_panicked_total"] != 1 {
		return fmt.Errorf("runs_panicked_total = %v, want 1", m["dbpserved_runs_panicked_total"])
	}

	status, body, _, err = d.post("/v1/runs", seeded(9102))
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("run after panic: status %d: %s", status, body)
	}
	if err := d.drain(); err != nil {
		return err
	}
	fmt.Println("chaos-smoke: panic: isolated, healthz 200, ledgers byte-identical")
	return nil
}

// scenarioTimeout: a huge run abandoned via ?timeout= is canceled and the
// single worker is reusable right away.
func scenarioTimeout(bin string) error {
	d, err := startDaemon(bin, "-workers", "1")
	if err != nil {
		return err
	}
	defer d.kill()

	status, body, _, err := d.post("/v1/runs?timeout=300ms", bigBody)
	if err != nil {
		return err
	}
	if status != http.StatusGatewayTimeout {
		return fmt.Errorf("abandoned run: status %d: %s", status, body)
	}
	// The next quick run must get the (sole) worker promptly.
	status, body, _, err = d.post("/v1/runs?timeout=60s", quickBody)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("run after cancellation: status %d: %s", status, body)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		m, err := d.metrics()
		if err != nil {
			return err
		}
		if m["dbpserved_runs_canceled_total"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("runs_canceled_total never incremented")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := d.drain(); err != nil {
		return err
	}
	fmt.Println("chaos-smoke: timeout: abandoned run canceled, worker slot reused")
	return nil
}

// scenarioRestart: SIGKILL the daemon with one finished and one running
// async job, restart over the same journal, and require the finished job's
// ledger back byte-identical and the killed job requeued at its original id
// (the journaled submit record carries the request body) instead of being
// reported as a terminal failure.
func scenarioRestart(bin string, baseline []byte) error {
	jdir, err := scratchDir("dbpserved-chaos-journal")
	if err != nil {
		return err
	}
	defer scrub(jdir)

	d, err := startDaemon(bin, "-journal-dir", jdir, "-workers", "1")
	if err != nil {
		return err
	}
	defer d.kill()

	// Async quick job → done.
	status, body, _, err := d.post("/v1/runs?async=1", quickBody)
	if err != nil {
		return err
	}
	if status != http.StatusAccepted {
		return fmt.Errorf("async submit: status %d: %s", status, body)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		return err
	}
	doneID := acc.ID
	ledger, err := d.pollDone(doneID, 60*time.Second)
	if err != nil {
		return err
	}
	if string(ledger) != string(baseline) {
		return fmt.Errorf("async ledger differs from baseline before the kill")
	}

	// Async huge job → running when we pull the plug.
	status, body, _, err = d.post("/v1/runs?async=1", bigBody)
	if err != nil {
		return err
	}
	if status != http.StatusAccepted {
		return fmt.Errorf("big async submit: status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		return err
	}
	lostID := acc.ID
	if err := d.waitStatus(lostID, "running", 15*time.Second); err != nil {
		return err
	}

	// The plug.
	if err := d.cmd.Process.Kill(); err != nil {
		return err
	}
	<-d.exited

	// Restart over the same journal. The short drain grace keeps the final
	// SIGTERM bounded: the requeued multi-minute job is drain-canceled after
	// 2s (checkpoint-then-release) instead of running to completion.
	d2, err := startDaemon(bin, "-journal-dir", jdir, "-workers", "1", "-drain-grace", "2s")
	if err != nil {
		return err
	}
	defer d2.kill()

	status, body, err = d2.get("/v1/runs/" + doneID)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("restored job: status %d: %s", status, body)
	}
	if string(body) != string(ledger) {
		return fmt.Errorf("restored ledger differs from the pre-kill bytes")
	}

	// The killed job is requeued live at its original id, not failed.
	status, body, err = d2.get("/v1/runs/" + lostID)
	if err != nil {
		return err
	}
	var doc struct {
		Status string `json:"status"`
	}
	if status != http.StatusAccepted || json.Unmarshal(body, &doc) != nil {
		return fmt.Errorf("requeued job: status %d: %s", status, body)
	}
	if doc.Status != "queued" && doc.Status != "running" {
		return fmt.Errorf("requeued job status = %q, want queued or running: %s", doc.Status, body)
	}

	// The journaled result re-seeds the cache: no re-simulation needed.
	status, body, cache, err := d2.post("/v1/runs", quickBody)
	if err != nil {
		return err
	}
	if status != http.StatusOK || cache != "hit" {
		return fmt.Errorf("restored cache: status %d, X-Cache %q (want 200/hit)", status, cache)
	}
	if string(body) != string(baseline) {
		return fmt.Errorf("restored cached ledger differs from baseline")
	}
	if err := d2.drain(); err != nil {
		return err
	}
	fmt.Println("chaos-smoke: restart: finished job preserved byte-identical, killed job requeued")
	return nil
}

// resumeBody is the prop for the checkpoint scenarios: big enough to write
// several checkpoints before the kill (with -checkpoint-interval 1 the
// effective period is one 250k-cycle scheduler quantum), small enough that
// the resumed remainder finishes in seconds.
const resumeBody = `{"benchmarks": ["mcf-like", "gcc-like"], "seed": 9301, "warmup": 0, "measure": 2000000}`

// scenarioResumeReference captures the uninterrupted ledger for resumeBody
// on a journal-less daemon — the byte-identity yardstick for both
// checkpoint scenarios.
func scenarioResumeReference(bin string) ([]byte, error) {
	d, err := startDaemon(bin)
	if err != nil {
		return nil, err
	}
	defer d.kill()
	status, ledger, _, err := d.post("/v1/runs?timeout=120s", resumeBody)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("reference run: status %d: %s", status, ledger)
	}
	if err := d.drain(); err != nil {
		return nil, err
	}
	fmt.Println("chaos-smoke: resume reference: uninterrupted ledger captured")
	return ledger, nil
}

// scenarioResume is the headline checkpoint drill: kill the daemon after it
// has journaled checkpoints for a running job, restart over the same
// journal, and require the job to resume from its latest checkpoint and
// finish with the reference run's exact bytes.
func scenarioResume(bin string, reference []byte) error {
	jdir, err := scratchDir("dbpserved-chaos-ckpt")
	if err != nil {
		return err
	}
	defer scrub(jdir)

	d, id, err := startInterruptedRun(bin, jdir, 2)
	if err != nil {
		return err
	}
	d.kill()
	<-d.exited

	d2, err := startDaemon(bin, "-journal-dir", jdir, "-workers", "1", "-checkpoint-interval", "1")
	if err != nil {
		return err
	}
	defer d2.kill()
	ledger, err := d2.pollDone(id, 180*time.Second)
	if err != nil {
		return fmt.Errorf("resumed job: %w", err)
	}
	if string(ledger) != string(reference) {
		return fmt.Errorf("resumed ledger differs from the uninterrupted reference (%d vs %d bytes)", len(ledger), len(reference))
	}
	m, err := d2.metrics()
	if err != nil {
		return err
	}
	if m["dbpserved_resumed_runs_total"] != 1 {
		return fmt.Errorf("resumed_runs_total = %v, want 1", m["dbpserved_resumed_runs_total"])
	}
	if err := d2.drain(); err != nil {
		return err
	}
	fmt.Println("chaos-smoke: resume: killed mid-run, resumed from checkpoint, ledger byte-identical")
	return nil
}

// scenarioCorruptCheckpoint: same kill, but every checkpoint blob is
// corrupted before the restart. The requeued job must fall back to a clean
// cycle-0 rerun — checkpoint errors counted, nothing resumed — and still
// produce the reference ledger.
func scenarioCorruptCheckpoint(bin string, reference []byte) error {
	jdir, err := scratchDir("dbpserved-chaos-ckpt-corrupt")
	if err != nil {
		return err
	}
	defer scrub(jdir)

	d, id, err := startInterruptedRun(bin, jdir, 1)
	if err != nil {
		return err
	}
	d.kill()
	<-d.exited

	ckptDir := filepath.Join(jdir, "checkpoints")
	blobs, err := os.ReadDir(ckptDir)
	if err != nil {
		return err
	}
	if len(blobs) == 0 {
		return fmt.Errorf("no checkpoint blobs on disk despite checkpoints_written > 0")
	}
	for _, e := range blobs {
		if err := os.WriteFile(filepath.Join(ckptDir, e.Name()), []byte("corrupt"), 0o644); err != nil {
			return err
		}
	}

	d2, err := startDaemon(bin, "-journal-dir", jdir, "-workers", "1", "-checkpoint-interval", "1")
	if err != nil {
		return err
	}
	defer d2.kill()
	ledger, err := d2.pollDone(id, 180*time.Second)
	if err != nil {
		return fmt.Errorf("rerun job: %w", err)
	}
	if string(ledger) != string(reference) {
		return fmt.Errorf("cycle-0 rerun ledger differs from the reference (%d vs %d bytes)", len(ledger), len(reference))
	}
	m, err := d2.metrics()
	if err != nil {
		return err
	}
	if m["dbpserved_resumed_runs_total"] != 0 {
		return fmt.Errorf("resumed_runs_total = %v, want 0 (corrupt blob must not resume)", m["dbpserved_resumed_runs_total"])
	}
	if m["dbpserved_checkpoint_errors_total"] < 1 {
		return fmt.Errorf("checkpoint_errors_total = %v, want >= 1", m["dbpserved_checkpoint_errors_total"])
	}
	if err := d2.drain(); err != nil {
		return err
	}
	fmt.Println("chaos-smoke: corrupt checkpoint: clean cycle-0 fallback, ledger byte-identical")
	return nil
}

// startInterruptedRun launches a checkpointing daemon over jdir, submits
// resumeBody async, waits until at least minCkpts checkpoints are written,
// and returns the still-running daemon plus the job id — ready for the
// caller to pull the plug.
func startInterruptedRun(bin, jdir string, minCkpts float64) (*daemon, string, error) {
	d, err := startDaemon(bin, "-journal-dir", jdir, "-workers", "1", "-checkpoint-interval", "1")
	if err != nil {
		return nil, "", err
	}
	status, body, _, err := d.post("/v1/runs?async=1", resumeBody)
	if err != nil {
		d.kill()
		return nil, "", err
	}
	if status != http.StatusAccepted {
		d.kill()
		return nil, "", fmt.Errorf("async submit: status %d: %s", status, body)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		d.kill()
		return nil, "", err
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		m, err := d.metrics()
		if err != nil {
			d.kill()
			return nil, "", err
		}
		if m["dbpserved_checkpoints_written_total"] >= minCkpts {
			return d, acc.ID, nil
		}
		select {
		case <-d.exited:
			return nil, "", fmt.Errorf("daemon exited while waiting for checkpoints")
		default:
		}
		if time.Now().After(deadline) {
			d.kill()
			return nil, "", fmt.Errorf("checkpoints_written never reached %v", minCkpts)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func seeded(seed int) string {
	return fmt.Sprintf(`{"benchmarks": ["mcf-like", "gcc-like"], "seed": %d, "warmup": 1000, "measure": 5000}`, seed)
}

// --- multi-tenant scenario -----------------------------------------------

// tenantBody is the workload both tenants submit in the tenancy drill:
// 301000 instructions → 602000 predicted simcycles at the built-in 2
// cycles/instruction, big enough (hundreds of ms) that a backlog of them
// takes visible wall-clock to drain.
func tenantBody(seed int) string {
	return fmt.Sprintf(`{"benchmarks": ["mcf-like", "gcc-like"], "seed": %d, "warmup": 1000, "measure": 300000}`, seed)
}

const tenantBodyCost = 602000 // predicted simcycles per tenantBody run

// greedyJobs is how many runs the greedy tenant gets in before its budget
// runs dry: its burst covers greedyJobs runs but not greedyJobs+1.
const greedyJobs = 4

// scenarioTenants is the multi-tenant drill: a greedy batch tenant
// saturating a 1-worker daemon must not starve an interactive tenant
// (weighted-fair queueing), its over-budget submission is refused with the
// billed estimate and a refill hint (cost-aware admission), and a SIGKILL
// + restart preserves both the per-tenant attribution of interrupted jobs
// and the spent quota (journal replay).
func scenarioTenants(bin string) error {
	state, err := scratchDir("dbpserved-tenants")
	if err != nil {
		return err
	}
	defer scrub(state)
	tenantsPath := filepath.Join(state, "tenants.json")
	tenantsDoc := fmt.Sprintf(`{
  "schema_version": 1,
  "tenants": [
    {"name": "vip", "key": "k-vip", "weight": 8, "lane": "interactive"},
    {"name": "greedy", "key": "k-greedy", "simcycles_per_sec": 1, "simcycles_burst": %d}
  ]
}`, greedyJobs*tenantBodyCost+tenantBodyCost/2)
	if err := os.WriteFile(tenantsPath, []byte(tenantsDoc), 0o644); err != nil {
		return err
	}
	jdir := filepath.Join(state, "journal")
	daemonFlags := []string{"-tenants", tenantsPath, "-journal-dir", jdir, "-workers", "1", "-queue", "32"}
	d, err := startDaemon(bin, daemonFlags...)
	if err != nil {
		return err
	}
	killed := false
	defer func() {
		if !killed {
			d.kill()
		}
	}()

	// The greedy tenant floods the single worker with batch jobs.
	var greedyIDs []string
	for i := 0; i < greedyJobs; i++ {
		status, body, _, err := d.postKey("/v1/runs?async=1", "k-greedy", tenantBody(100+i))
		if err != nil {
			return err
		}
		if status != http.StatusAccepted {
			return fmt.Errorf("greedy submit %d: status %d: %s", i, status, body)
		}
		var acc struct {
			ID     string `json:"id"`
			Tenant string `json:"tenant"`
		}
		if err := json.Unmarshal(body, &acc); err != nil {
			return err
		}
		if acc.Tenant != "greedy" {
			return fmt.Errorf("greedy submit %d attributed to %q", i, acc.Tenant)
		}
		greedyIDs = append(greedyIDs, acc.ID)
	}
	// The interactive tenant submits one same-sized job into the backlog.
	status, body, _, err := d.postKey("/v1/runs?lane=interactive&async=1", "k-vip", tenantBody(555))
	if err != nil {
		return err
	}
	if status != http.StatusAccepted {
		return fmt.Errorf("interactive submit: status %d: %s", status, body)
	}
	var iacc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &iacc); err != nil {
		return err
	}

	// Cost-aware admission: greedy's next job is over budget and the
	// refusal carries the bill — a structured quota_exceeded with the
	// predicted cost and a refill-derived Retry-After, never a bare 429.
	checkQuotaRefusal := func(d *daemon) error {
		status, body, retryAfter, err := d.postKey("/v1/runs", "k-greedy", tenantBody(999))
		if err != nil {
			return err
		}
		if status != http.StatusTooManyRequests {
			return fmt.Errorf("over-budget submit: status %d: %s", status, body)
		}
		var doc struct {
			Error struct {
				Code     string `json:"code"`
				Estimate struct {
					Simcycles float64 `json:"simcycles"`
				} `json:"estimate"`
			} `json:"error"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			return fmt.Errorf("quota refusal not structured: %s", body)
		}
		if doc.Error.Code != "quota_exceeded" {
			return fmt.Errorf("refusal code %q, want quota_exceeded: %s", doc.Error.Code, body)
		}
		if doc.Error.Estimate.Simcycles != tenantBodyCost {
			return fmt.Errorf("refusal estimate %v simcycles, want %d", doc.Error.Estimate.Simcycles, tenantBodyCost)
		}
		if secs, err := strconv.Atoi(retryAfter); err != nil || secs < 1 {
			return fmt.Errorf("Retry-After %q, want a positive refill hint", retryAfter)
		}
		return nil
	}
	if err := checkQuotaRefusal(d); err != nil {
		return err
	}

	// Starvation-freedom: the interactive job finishes while most of the
	// greedy backlog is still pending — weighted-fair queueing let it jump
	// the line instead of draining FIFO behind the flood.
	if _, err := d.pollDone(iacc.ID, 120*time.Second); err != nil {
		return fmt.Errorf("interactive job under greedy flood: %w", err)
	}
	unfinished := 0
	for _, id := range greedyIDs {
		st, _, err := d.get("/v1/runs/" + id)
		if err != nil {
			return err
		}
		if st == http.StatusAccepted {
			unfinished++
		}
	}
	if unfinished < 2 {
		return fmt.Errorf("only %d of %d greedy jobs still pending when the interactive job finished — it drained FIFO", unfinished, greedyJobs)
	}
	// The paper's fairness metric, per tenant: the interactive job waited
	// at most one residual batch job, so its (wait+service)/service
	// slowdown stays small; FIFO behind the whole flood would be ~5×.
	m, err := d.metrics()
	if err != nil {
		return err
	}
	slow, ok := m[`dbpserved_tenant_slowdown{tenant="vip"}`]
	if !ok {
		return fmt.Errorf("no dbpserved_tenant_slowdown series for vip")
	}
	if slow >= 4 {
		return fmt.Errorf("interactive max slowdown %.2f, want < 4 (starved behind batch work?)", slow)
	}

	// Record one finished greedy ledger, then SIGKILL mid-backlog.
	firstLedger, err := d.pollDone(greedyIDs[0], 120*time.Second)
	if err != nil {
		return err
	}
	d.kill()
	killed = true

	// Restart over the same journal and tenant config.
	d2, err := startDaemon(bin, daemonFlags...)
	if err != nil {
		return err
	}
	defer d2.kill()

	// Spent quota survives the kill: the journal's tenancy stamps re-debit
	// at startup, so greedy is still over budget on the fresh registry.
	if err := checkQuotaRefusal(d2); err != nil {
		return fmt.Errorf("after restart: %w", err)
	}
	// The finished job's ledger is byte-identical across the kill.
	got, err := d2.pollDone(greedyIDs[0], 60*time.Second)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, firstLedger) {
		return fmt.Errorf("greedy ledger changed across SIGKILL+restart")
	}
	// Interrupted jobs keep their tenant attribution and finish.
	for _, id := range greedyIDs[1:] {
		st, body, err := d2.get("/v1/runs/" + id)
		if err != nil {
			return err
		}
		if st == http.StatusAccepted {
			var acc struct {
				Tenant string `json:"tenant"`
			}
			if err := json.Unmarshal(body, &acc); err == nil && acc.Tenant != "greedy" {
				return fmt.Errorf("requeued job %s attributed to %q, want greedy", id, acc.Tenant)
			}
		}
		if _, err := d2.pollDone(id, 180*time.Second); err != nil {
			return fmt.Errorf("requeued greedy job: %w", err)
		}
	}
	return d2.drain()
}

// --- daemon harness ------------------------------------------------------

type daemon struct {
	cmd    *exec.Cmd
	base   string
	tmp    string
	exited chan error
}

// startDaemon launches the binary on a free port and waits for it to
// report its bound address. When artifacts are kept, the daemon's output
// is additionally teed to a daemon.log in its scratch directory.
func startDaemon(bin string, extra ...string) (*daemon, error) {
	tmp, err := scratchDir("dbpserved-chaos")
	if err != nil {
		return nil, err
	}
	addrFile := filepath.Join(tmp, "addr")
	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile, "-log-json"}, extra...)
	cmd := exec.Command(bin, args...)
	var logFile *os.File
	var sink io.Writer = os.Stderr
	if artifactsDir != "" {
		logFile, err = os.Create(filepath.Join(tmp, "daemon.log"))
		if err != nil {
			scrub(tmp)
			return nil, err
		}
		sink = io.MultiWriter(os.Stderr, logFile)
	}
	cmd.Stderr = sink
	cmd.Stdout = sink
	if err := cmd.Start(); err != nil {
		if logFile != nil {
			logFile.Close()
		}
		scrub(tmp)
		return nil, err
	}
	d := &daemon{cmd: cmd, tmp: tmp, exited: make(chan error, 1)}
	go func() {
		err := cmd.Wait()
		if logFile != nil {
			logFile.Close()
		}
		d.exited <- err
	}()

	deadline := time.Now().Add(15 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			d.base = "http://" + string(data)
			return d, nil
		}
		select {
		case err := <-d.exited:
			scrub(tmp)
			return nil, fmt.Errorf("daemon exited before binding (flags: %s): %v — likely a bad flag or an occupied port; its log is above%s",
				strings.Join(args, " "), err, artifactHint(tmp))
		default:
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			scrub(tmp)
			return nil, fmt.Errorf("daemon never wrote its bound address to %s within 15s (flags: %s) — it is running but never finished binding%s",
				addrFile, strings.Join(args, " "), artifactHint(tmp))
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// kill is the unconditional cleanup; safe after drain.
func (d *daemon) kill() {
	d.cmd.Process.Kill()
	scrub(d.tmp)
}

// drain SIGTERMs the daemon and requires a clean exit.
func (d *daemon) drain() error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case err := <-d.exited:
		if err != nil {
			return fmt.Errorf("daemon exited non-zero after SIGTERM: %v", err)
		}
		return nil
	case <-time.After(60 * time.Second):
		return fmt.Errorf("daemon did not exit within 60s of SIGTERM")
	}
}

func (d *daemon) post(path, body string) (status int, data []byte, cache string, err error) {
	resp, err := http.Post(d.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(resp.Body)
	return resp.StatusCode, data, resp.Header.Get("X-Cache"), err
}

// postKey POSTs with a tenant API key and surfaces the Retry-After header.
func (d *daemon) postKey(path, key, body string) (status int, data []byte, retryAfter string, err error) {
	req, err := http.NewRequest(http.MethodPost, d.base+path, strings.NewReader(body))
	if err != nil {
		return 0, nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-API-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(resp.Body)
	return resp.StatusCode, data, resp.Header.Get("Retry-After"), err
}

func (d *daemon) get(path string) (status int, data []byte, err error) {
	resp, err := http.Get(d.base + path)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

func (d *daemon) checkHealthz() error {
	status, data, err := d.get("/healthz")
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("status %d: %s", status, data)
	}
	return nil
}

// metrics scrapes /metrics into name{labels} → value.
func (d *daemon) metrics() (map[string]float64, error) {
	status, data, err := d.get("/metrics")
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("/metrics status %d", status)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		if v, err := strconv.ParseFloat(line[i+1:], 64); err == nil {
			out[line[:i]] = v
		}
	}
	return out, nil
}

// pollDone polls an async job until it answers 200 and returns the ledger.
func (d *daemon) pollDone(id string, timeout time.Duration) ([]byte, error) {
	deadline := time.Now().Add(timeout)
	for {
		status, data, err := d.get("/v1/runs/" + id)
		if err != nil {
			return nil, err
		}
		if status == http.StatusOK {
			return data, nil
		}
		if status != http.StatusAccepted {
			return nil, fmt.Errorf("job %s: status %d: %s", id, status, data)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s never finished", id)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// waitStatus polls until the job reports the wanted lifecycle status.
func (d *daemon) waitStatus(id, want string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		_, data, err := d.get("/v1/runs/" + id)
		if err != nil {
			return err
		}
		var st struct {
			Status string `json:"status"`
		}
		if json.Unmarshal(data, &st) == nil && st.Status == want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s never reached %q (last: %s)", id, want, data)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
