// Command fleetsmoke is the CI drill for dbpserved's fleet mode: it boots a
// real coordinator plus three real worker daemons and asserts the fleet
// contracts hold end to end:
//
//   - a batch sweep POSTed to the coordinator streams one NDJSON line per
//     cell plus a summary, every cell lands "done", and each cell's
//     ledger_sha256 is byte-identical to a single-node reference daemon's
//     ledger for the same request;
//   - the sweep costs exactly one simulation per unique cell fleet-wide
//     (sum of dbpserved_runs_executed_total across workers), and re-running
//     it is all cache hits with zero new simulations;
//   - the same run POSTed directly to every worker is answered by the fleet
//     (owner cache, peer cache, or delegation) without any worker
//     re-simulating — fleet-wide singleflight;
//   - a long run whose owner is SIGKILLed mid-flight is migrated: the
//     coordinator re-places it on a survivor with the latest mirrored
//     checkpoint, the run completes with a ledger byte-identical to an
//     uninterrupted single-node run, and dbpfleet_migrations_total and
//     dbpfleet_worker_up record the event;
//   - after the kill, the surviving fleet still completes a fresh sweep
//     with reference-identical ledgers (re-placement of the dead worker's
//     key range).
//
// With -chaos, the drill instead targets the fleet's resilience layer:
//
//   - the coordinator (running with -journal-dir) is SIGKILLed mid-sweep
//     and restarted on the same address over the same journal: the
//     restarted coordinator resyncs the workers, resumes the sweep from
//     its first incomplete cell, a resubmitted identical sweep completes
//     with ledgers byte-identical to the single-node reference, and the
//     fleet-wide unique-simulation count is unchanged — nothing completed
//     is ever re-simulated;
//   - a worker booted behind a network partition from the coordinator
//     (-chaos partition=<coordinator>) serves direct runs standalone in
//     degraded mode, buffers its checkpoint mirrors locally, and never
//     pollutes the coordinator's live-worker count.
//
// Usage: go run ./scripts/fleetsmoke [-chaos] /path/to/dbpserved
//
// With FLEETSMOKE_ARTIFACTS=<dir> set (CI does this), every scratch
// directory and per-daemon log file is created under <dir> and left in
// place, so a failing drill can be uploaded as a workflow artifact.
package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"dbpsim/internal/serve"
)

// The sweep grid: one mix, three partition policies — three cells. Budgets
// match the repo's smoke convention (milliseconds per cell).
const (
	sweepMix  = "W4-M1"
	sweepBody = `{"mixes": ["W4-M1"], "partitions": ["none", "equal", "dbp"], "warmup": 1000, "measure": 5000}`
	cellBodyT = `{"mix": "W4-M1", "partition": "%s", "warmup": 1000, "measure": 5000}`
	// migrateBody is big enough to be mid-flight when its owner is killed
	// (checkpoint-interval 1 mirrors a blob within the first scheduler
	// quantum) yet finishes in seconds once resumed.
	migrateBody = `{"benchmarks": ["mcf-like", "gcc-like"], "seed": 7001, "partition": "dbp", "warmup": 0, "measure": 2000000}`
)

var sweepPartitions = []string{"none", "equal", "dbp"}

var artifactsDir = os.Getenv("FLEETSMOKE_ARTIFACTS")

func scratchDir(pattern string) (string, error) {
	if artifactsDir == "" {
		return os.MkdirTemp("", pattern)
	}
	if err := os.MkdirAll(artifactsDir, 0o755); err != nil {
		return "", err
	}
	return os.MkdirTemp(artifactsDir, pattern)
}

func scrub(path string) {
	if artifactsDir == "" {
		os.RemoveAll(path)
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fleet-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("fleet-smoke: OK")
}

func run(args []string) error {
	fs := flag.NewFlagSet("fleetsmoke", flag.ContinueOnError)
	chaosMode := fs.Bool("chaos", false, "run the resilience drill (coordinator kill+restart, partitioned worker) instead of the happy-path fleet drill")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: fleetsmoke [-chaos] /path/to/dbpserved")
	}
	bin := fs.Arg(0)
	if *chaosMode {
		return runChaos(bin)
	}

	refs, err := scenarioReference(bin)
	if err != nil {
		return fmt.Errorf("single-node reference: %w", err)
	}

	f, err := startFleet(bin, 3)
	if err != nil {
		return fmt.Errorf("fleet boot: %w", err)
	}
	defer f.kill()

	if err := scenarioSweep(f, refs); err != nil {
		return fmt.Errorf("batch sweep: %w", err)
	}
	if err := scenarioSingleflight(f); err != nil {
		return fmt.Errorf("fleet singleflight: %w", err)
	}
	if err := scenarioMigration(f, refs["migrate"]); err != nil {
		return fmt.Errorf("checkpoint migration: %w", err)
	}
	if err := scenarioSurvivorSweep(f, refs); err != nil {
		return fmt.Errorf("post-kill sweep: %w", err)
	}
	return nil
}

// runChaos is the -chaos drill: a journaled coordinator killed mid-sweep
// and restarted over its journal, then a worker booted behind a network
// partition.
func runChaos(bin string) error {
	refs, err := chaosReference(bin)
	if err != nil {
		return fmt.Errorf("single-node reference: %w", err)
	}
	journal, err := scratchDir("dbpserved-fleet-coord-journal")
	if err != nil {
		return err
	}
	defer scrub(journal)

	f, err := startFleet(bin, 3, "-journal-dir", journal)
	if err != nil {
		return fmt.Errorf("fleet boot: %w", err)
	}
	defer f.kill()

	if err := scenarioCoordinatorKillRestart(bin, f, journal, refs); err != nil {
		return fmt.Errorf("coordinator kill+restart: %w", err)
	}
	if err := scenarioPartitionedWorker(bin, f); err != nil {
		return fmt.Errorf("partitioned worker: %w", err)
	}
	return nil
}

// --- scenarios -----------------------------------------------------------

// scenarioReference captures, on one untouched single-node daemon, the
// canonical ledger for every sweep cell and for the migration run — the
// byte-identity yardstick for everything the fleet answers.
func scenarioReference(bin string) (map[string][]byte, error) {
	d, err := startDaemon(bin, "ref")
	if err != nil {
		return nil, err
	}
	defer d.kill()
	refs := make(map[string][]byte)
	for _, part := range sweepPartitions {
		status, ledger, _, err := d.post("/v1/runs", fmt.Sprintf(cellBodyT, part))
		if err != nil {
			return nil, err
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("cell %s: status %d: %s", part, status, ledger)
		}
		refs[part] = ledger
	}
	status, ledger, _, err := d.post("/v1/runs?timeout=120s", migrateBody)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("migration reference: status %d: %s", status, ledger)
	}
	refs["migrate"] = ledger
	if err := d.drain(); err != nil {
		return nil, err
	}
	fmt.Println("fleet-smoke: reference: single-node ledgers captured")
	return refs, nil
}

// scenarioSweep drives the batch sweep and checks completeness, byte
// identity against the reference, and the one-simulation-per-cell economy.
func scenarioSweep(f *fleetHarness, refs map[string][]byte) error {
	results, summary, err := f.sweep(sweepBody)
	if err != nil {
		return err
	}
	if summary.Cells != 3 || summary.Done != 3 || summary.Failed != 0 {
		return fmt.Errorf("summary = %+v, want 3/3 done", summary)
	}
	if err := checkCells(results, refs); err != nil {
		return err
	}

	executed, err := f.totalExecuted()
	if err != nil {
		return err
	}
	if executed != 3 {
		return fmt.Errorf("3 cells cost %v simulations fleet-wide, want exactly 3", executed)
	}

	// Same sweep again: all cache hits, zero new simulations.
	results, summary, err = f.sweep(sweepBody)
	if err != nil {
		return err
	}
	if summary.Done != 3 {
		return fmt.Errorf("re-sweep summary = %+v", summary)
	}
	for _, res := range results {
		if res.Cache != "hit" {
			return fmt.Errorf("re-swept cell %s/%s answered cache=%q, want hit", res.Mix, res.Partition, res.Cache)
		}
	}
	if again, err := f.totalExecuted(); err != nil {
		return err
	} else if again != executed {
		return fmt.Errorf("re-sweep re-simulated: %v -> %v", executed, again)
	}
	fmt.Println("fleet-smoke: sweep: 3 cells done, ledgers reference-identical, 3 simulations total")
	return nil
}

// scenarioSingleflight POSTs one already-swept cell directly to every
// worker: each answer must come from the fleet's caches, never from a new
// simulation.
func scenarioSingleflight(f *fleetHarness) error {
	before, err := f.totalExecuted()
	if err != nil {
		return err
	}
	body := fmt.Sprintf(cellBodyT, "dbp")
	for id, d := range f.workers {
		status, ledger, _, err := d.post("/v1/runs", body)
		if err != nil {
			return fmt.Errorf("direct post to %s: %w", id, err)
		}
		if status != http.StatusOK {
			return fmt.Errorf("direct post to %s: status %d: %s", id, status, ledger)
		}
	}
	after, err := f.totalExecuted()
	if err != nil {
		return err
	}
	if after != before {
		return fmt.Errorf("direct posts re-simulated: %v -> %v", before, after)
	}
	fmt.Println("fleet-smoke: singleflight: identical requests to every worker, zero new simulations")
	return nil
}

// scenarioMigration SIGKILLs the owner of a long run mid-flight and
// requires the coordinator to finish it elsewhere from the mirrored
// checkpoint, byte-identical to the uninterrupted reference.
func scenarioMigration(f *fleetHarness, reference []byte) error {
	key, _, apiErr := serve.ResolveRequest([]byte(migrateBody), 0)
	if apiErr != nil {
		return fmt.Errorf("resolve migration body: %s", apiErr.Message)
	}

	type reply struct {
		status int
		data   []byte
		err    error
	}
	replyCh := make(chan reply, 1)
	go func() {
		status, data, _, err := f.coord.post("/v1/runs", migrateBody)
		replyCh <- reply{status, data, err}
	}()

	// Wait for the coordinator to hold a mirrored checkpoint for the run,
	// then kill the worker that owns the key.
	victim, err := f.waitMirroredCheckpoint(key, 60*time.Second)
	if err != nil {
		return err
	}
	vd, ok := f.workers[victim]
	if !ok {
		return fmt.Errorf("ring names unknown owner %q", victim)
	}
	if err := vd.cmd.Process.Kill(); err != nil {
		return err
	}
	<-vd.exited
	delete(f.workers, victim)
	fmt.Printf("fleet-smoke: migration: SIGKILLed owner %s mid-run\n", victim)

	r := <-replyCh
	if r.err != nil {
		return fmt.Errorf("migrated run failed in transit: %w", r.err)
	}
	if r.status != http.StatusOK {
		return fmt.Errorf("migrated run: status %d: %s", r.status, r.data)
	}
	if string(r.data) != string(reference) {
		return fmt.Errorf("migrated ledger differs from the uninterrupted single-node reference (%d vs %d bytes)",
			len(r.data), len(reference))
	}

	m, err := f.coord.metrics()
	if err != nil {
		return err
	}
	if m["dbpfleet_migrations_total"] < 1 {
		return fmt.Errorf("dbpfleet_migrations_total = %v, want >= 1", m["dbpfleet_migrations_total"])
	}
	if up := m[fmt.Sprintf("dbpfleet_worker_up{worker=%q}", victim)]; up != 0 {
		return fmt.Errorf("dbpfleet_worker_up for the killed worker = %v, want 0", up)
	}
	fmt.Println("fleet-smoke: migration: run resumed on a survivor, ledger byte-identical, migration counted")
	return nil
}

// scenarioSurvivorSweep re-runs the sweep on the two-worker fleet: the dead
// worker's key range must have been re-placed, every cell completes, and
// the ledgers still match the reference.
func scenarioSurvivorSweep(f *fleetHarness, refs map[string][]byte) error {
	results, summary, err := f.sweep(sweepBody)
	if err != nil {
		return err
	}
	if summary.Done != 3 || summary.Failed != 0 {
		return fmt.Errorf("survivor sweep summary = %+v, want 3 done", summary)
	}
	if err := checkCells(results, refs); err != nil {
		return err
	}
	fmt.Println("fleet-smoke: post-kill sweep: survivors re-placed the dead worker's cells, ledgers still reference-identical")
	return nil
}

// --- chaos scenarios ------------------------------------------------------

// The chaos sweep's cells run long enough (seconds each) that SIGKILLing
// the coordinator after the first streamed result line reliably lands
// mid-sweep.
const (
	chaosSweepBody = `{"mixes": ["W4-M1"], "partitions": ["none", "equal", "dbp"], "warmup": 0, "measure": 2000000}`
	chaosCellT     = `{"mix": "W4-M1", "partition": "%s", "warmup": 0, "measure": 2000000}`
)

// chaosReference captures single-node ledgers for the chaos sweep's cells.
func chaosReference(bin string) (map[string][]byte, error) {
	d, err := startDaemon(bin, "chaos-ref")
	if err != nil {
		return nil, err
	}
	defer d.kill()
	refs := make(map[string][]byte)
	for _, part := range sweepPartitions {
		status, ledger, _, err := d.post("/v1/runs?timeout=120s", fmt.Sprintf(chaosCellT, part))
		if err != nil {
			return nil, err
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("cell %s: status %d: %s", part, status, ledger)
		}
		refs[part] = ledger
	}
	if err := d.drain(); err != nil {
		return nil, err
	}
	fmt.Println("fleet-smoke: chaos reference: single-node ledgers captured")
	return refs, nil
}

// scenarioCoordinatorKillRestart SIGKILLs the journaled coordinator after
// the first sweep cell streams, restarts it on the same address over the
// same journal, and requires: the interrupted stream tears without a
// summary; the restarted coordinator resumes the sweep to completion; a
// resubmitted identical sweep answers all cells with reference-identical
// ledgers; and the fleet-wide unique-simulation count is exactly one per
// cell — nothing with a journaled terminal record ever re-simulates.
func scenarioCoordinatorKillRestart(bin string, f *fleetHarness, journal string, refs map[string][]byte) error {
	coordAddr := strings.TrimPrefix(f.coord.base, "http://")

	resp, err := http.Post(f.coord.base+"/v1/sweeps", "application/json", strings.NewReader(chaosSweepBody))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("sweep: status %d: %s", resp.StatusCode, data)
	}
	received, sawSummary := 0, false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	for sc.Scan() {
		var probe struct {
			Summary bool `json:"summary"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			return fmt.Errorf("bad stream line %.120q: %w", sc.Text(), err)
		}
		if probe.Summary {
			sawSummary = true
			break
		}
		received++
		if received == 1 {
			if err := f.coord.cmd.Process.Kill(); err != nil {
				return err
			}
			<-f.coord.exited
			fmt.Println("fleet-smoke: chaos: SIGKILLed coordinator after the first streamed cell")
		}
	}
	if sawSummary {
		return fmt.Errorf("sweep completed (summary line seen) before the kill landed; mid-sweep interruption never happened")
	}
	fmt.Printf("fleet-smoke: chaos: sweep stream tore after %d cell line(s), no summary\n", received)

	// Restart on the same address over the same journal. The workers still
	// point at this address; Go listeners set SO_REUSEADDR, so the port
	// rebinds immediately.
	coord2, err := startDaemonAt(bin, "coord-restarted", coordAddr, "-coordinator", "-journal-dir", journal)
	if err != nil {
		return fmt.Errorf("coordinator restart: %w", err)
	}
	f.coord = coord2
	fmt.Println("fleet-smoke: chaos: coordinator restarted over its journal")

	// The restarted coordinator must resync the workers and finish the
	// sweep's remaining cells on its own.
	deadline := time.Now().Add(120 * time.Second)
	for {
		m, err := f.coord.metrics()
		if err == nil && m["dbpfleet_sweep_cells_done_total"] == float64(len(sweepPartitions)) {
			break
		}
		if err == nil && m["dbpfleet_sweep_cells_failed_total"] > 0 {
			return fmt.Errorf("resumed sweep failed cells: %v", m["dbpfleet_sweep_cells_failed_total"])
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("restarted coordinator never finished the interrupted sweep (cells done: %v)",
				m["dbpfleet_sweep_cells_done_total"])
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Println("fleet-smoke: chaos: restarted coordinator resumed the sweep to completion")

	// Resubmitting the identical sweep is the client's recovery path: every
	// cell must answer, byte-identical to the single-node reference.
	results, summary, err := f.sweep(chaosSweepBody)
	if err != nil {
		return err
	}
	if summary.Done != len(sweepPartitions) || summary.Failed != 0 {
		return fmt.Errorf("resubmitted sweep summary = %+v, want %d done", summary, len(sweepPartitions))
	}
	if err := checkCells(results, refs); err != nil {
		return err
	}

	// The hard invariant: across kill, restart, resume, and resubmission the
	// fleet paid exactly one simulation per unique cell.
	executed, err := f.totalExecuted()
	if err != nil {
		return err
	}
	if executed != float64(len(sweepPartitions)) {
		return fmt.Errorf("kill+restart changed the unique-simulation count: %v executed, want %d",
			executed, len(sweepPartitions))
	}
	fmt.Println("fleet-smoke: chaos: resubmitted sweep reference-identical, unique-simulation count unchanged")
	return nil
}

// scenarioPartitionedWorker boots a fourth worker behind an injected
// network partition from the coordinator: it must come up degraded, serve
// direct runs standalone, buffer its checkpoint mirrors locally, and never
// appear in the coordinator's live-worker count.
func scenarioPartitionedWorker(bin string, f *fleetHarness) error {
	coordHost := strings.TrimPrefix(f.coord.base, "http://")
	d, err := startDaemon(bin, "w4-partitioned",
		"-join", f.coord.base,
		"-worker-id", "w4",
		"-heartbeat", "100ms",
		"-checkpoint-interval", "1",
		"-workers", "2",
		"-chaos", "partition="+coordHost,
		"-chaos-allow",
	)
	if err != nil {
		return err
	}
	defer d.kill()

	deadline := time.Now().Add(30 * time.Second)
	for {
		m, err := d.metrics()
		if err == nil && m["dbpfleet_degraded"] == 1 {
			if m["dbpfleet_heartbeat_failures_total"] < 1 {
				return fmt.Errorf("degraded without counted heartbeat failures: %v", m)
			}
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("partitioned worker never entered degraded mode")
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("fleet-smoke: chaos: partitioned worker came up degraded")

	// Standalone serving: a direct run on the partitioned worker answers.
	// The run is long enough (seconds) that checkpoints fire mid-flight,
	// which must land in the local mirror buffer, not on the floor.
	status, ledger, _, err := d.post("/v1/runs?timeout=120s", fmt.Sprintf(chaosCellT, "equal"))
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("degraded worker answered %d to a direct run: %s", status, ledger)
	}

	// Its checkpoint mirrors buffered locally instead of being dropped.
	m, err := d.metrics()
	if err != nil {
		return err
	}
	if m["dbpfleet_mirrors_buffered_total"] < 1 {
		return fmt.Errorf("dbpfleet_mirrors_buffered_total = %v, want >= 1", m["dbpfleet_mirrors_buffered_total"])
	}

	// The coordinator never saw it: the live-worker count is unchanged.
	var h struct {
		Live int `json:"workers_live"`
	}
	hstatus, data, err := f.coord.get("/healthz")
	if err != nil || hstatus != http.StatusOK || json.Unmarshal(data, &h) != nil {
		return fmt.Errorf("coordinator healthz: status %d, err %v", hstatus, err)
	}
	if h.Live != len(f.workers) {
		return fmt.Errorf("coordinator sees %d live workers, want %d (the partitioned worker must never join)", h.Live, len(f.workers))
	}
	fmt.Println("fleet-smoke: chaos: partitioned worker served standalone, buffered mirrors, never joined the ring")
	return nil
}

// checkCells verifies a sweep's results cover every partition exactly once
// with ledgers hash-identical to the single-node reference.
func checkCells(results []sweepResult, refs map[string][]byte) error {
	seen := make(map[string]bool)
	for _, res := range results {
		if res.Status != "done" {
			return fmt.Errorf("cell %s/%s failed: %s", res.Mix, res.Partition, res.Error)
		}
		ref, ok := refs[res.Partition]
		if !ok || seen[res.Partition] {
			return fmt.Errorf("unexpected or duplicate cell partition %q", res.Partition)
		}
		seen[res.Partition] = true
		want := sha256.Sum256(ref)
		if res.LedgerSHA256 != hex.EncodeToString(want[:]) {
			return fmt.Errorf("cell %s/%s ledger_sha256 differs from the single-node reference", res.Mix, res.Partition)
		}
		if res.Worker == "" {
			return fmt.Errorf("cell %s/%s carries no worker attribution", res.Mix, res.Partition)
		}
	}
	if len(seen) != len(sweepPartitions) {
		return fmt.Errorf("sweep covered %d cells, want %d", len(seen), len(sweepPartitions))
	}
	return nil
}

// --- fleet harness -------------------------------------------------------

type fleetHarness struct {
	coord   *daemon
	workers map[string]*daemon // worker id → daemon
}

// startFleet boots one coordinator (plus any extra coordinator flags, e.g.
// -journal-dir) and n workers (checkpointing every scheduler quantum,
// heartbeating fast) and waits until the coordinator reports the whole
// fleet live and every worker has a converged membership view.
func startFleet(bin string, n int, coordExtra ...string) (*fleetHarness, error) {
	coord, err := startDaemon(bin, "coord", append([]string{"-coordinator"}, coordExtra...)...)
	if err != nil {
		return nil, err
	}
	f := &fleetHarness{coord: coord, workers: make(map[string]*daemon)}
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("w%d", i)
		d, err := startDaemon(bin, id,
			"-join", coord.base,
			"-worker-id", id,
			"-heartbeat", "250ms",
			"-checkpoint-interval", "1",
			"-workers", "2",
		)
		if err != nil {
			f.kill()
			return nil, err
		}
		f.workers[id] = d
	}

	// Converged: coordinator sees n live workers, and every worker's metrics
	// page is serving (its join completed — dbpserved starts heartbeats only
	// after a successful first join).
	deadline := time.Now().Add(30 * time.Second)
	for {
		var h struct {
			Live int `json:"workers_live"`
		}
		status, data, err := coord.get("/healthz")
		if err == nil && status == http.StatusOK && json.Unmarshal(data, &h) == nil && h.Live == n {
			break
		}
		if time.Now().After(deadline) {
			f.kill()
			return nil, fmt.Errorf("fleet never converged to %d live workers (last: %s)", n, data)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Give every worker one heartbeat round so its own membership snapshot
	// includes the whole fleet (join responses carry the member list).
	time.Sleep(600 * time.Millisecond)
	fmt.Printf("fleet-smoke: fleet up: coordinator + %d workers\n", n)
	return f, nil
}

func (f *fleetHarness) kill() {
	for _, d := range f.workers {
		d.kill()
	}
	f.coord.kill()
}

// totalExecuted sums dbpserved_runs_executed_total across the live fleet —
// the number of genuine simulations the fleet has paid for.
func (f *fleetHarness) totalExecuted() (float64, error) {
	var total float64
	for id, d := range f.workers {
		m, err := d.metrics()
		if err != nil {
			return 0, fmt.Errorf("worker %s metrics: %w", id, err)
		}
		total += m["dbpserved_runs_executed_total"]
	}
	return total, nil
}

// sweepResult mirrors the NDJSON line schema of internal/fleet.SweepResult.
type sweepResult struct {
	Mix          string          `json:"mix"`
	Partition    string          `json:"partition"`
	Status       string          `json:"status"`
	Worker       string          `json:"worker"`
	Cache        string          `json:"cache"`
	LedgerSHA256 string          `json:"ledger_sha256"`
	Error        json.RawMessage `json:"error"`
}

type sweepSummary struct {
	Summary bool `json:"summary"`
	Cells   int  `json:"cells"`
	Done    int  `json:"done"`
	Failed  int  `json:"failed"`
}

// sweep POSTs the sweep body to the coordinator and parses the NDJSON
// stream, requiring a clean summary line.
func (f *fleetHarness) sweep(body string) ([]sweepResult, *sweepSummary, error) {
	resp, err := http.Post(f.coord.base+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return nil, nil, fmt.Errorf("sweep: status %d: %s", resp.StatusCode, data)
	}
	var results []sweepResult
	var summary *sweepSummary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	for sc.Scan() {
		var probe struct {
			Summary bool `json:"summary"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			return nil, nil, fmt.Errorf("bad stream line %.120q: %w", sc.Text(), err)
		}
		if probe.Summary {
			summary = new(sweepSummary)
			if err := json.Unmarshal(sc.Bytes(), summary); err != nil {
				return nil, nil, err
			}
			continue
		}
		var res sweepResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			return nil, nil, err
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if summary == nil {
		return nil, nil, fmt.Errorf("sweep stream ended without a summary line")
	}
	return results, summary, nil
}

// waitMirroredCheckpoint polls GET /v1/fleet/ring until the coordinator
// holds a checkpoint blob for key, returning the key's current ring owner.
func (f *fleetHarness) waitMirroredCheckpoint(key string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		status, data, err := f.coord.get("/v1/fleet/ring")
		if err != nil || status != http.StatusOK {
			return "", fmt.Errorf("ring probe: status %d: %v", status, err)
		}
		var ring struct {
			Checkpoints []struct {
				Key   string `json:"key"`
				Owner string `json:"owner"`
			} `json:"checkpoints"`
		}
		if err := json.Unmarshal(data, &ring); err != nil {
			return "", err
		}
		for _, ck := range ring.Checkpoints {
			if ck.Key == key && ck.Owner != "" {
				return ck.Owner, nil
			}
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("no checkpoint mirrored for the migration run within %v", timeout)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// --- daemon harness (chaossmoke's, with named log files) -----------------

type daemon struct {
	cmd    *exec.Cmd
	base   string
	tmp    string
	exited chan error
}

// startDaemon launches the binary on a free port and waits for it to
// report its bound address. name labels the scratch dir and log file.
func startDaemon(bin, name string, extra ...string) (*daemon, error) {
	return startDaemonAt(bin, name, "127.0.0.1:0", extra...)
}

// startDaemonAt is startDaemon pinned to a specific listen address — how
// the chaos drill restarts a killed coordinator where its workers still
// expect it.
func startDaemonAt(bin, name, addr string, extra ...string) (*daemon, error) {
	tmp, err := scratchDir("dbpserved-fleet-" + name)
	if err != nil {
		return nil, err
	}
	addrFile := filepath.Join(tmp, "addr")
	args := append([]string{"-addr", addr, "-addr-file", addrFile, "-log-json"}, extra...)
	cmd := exec.Command(bin, args...)
	var logFile *os.File
	var sink io.Writer = os.Stderr
	if artifactsDir != "" {
		logFile, err = os.Create(filepath.Join(tmp, "daemon.log"))
		if err != nil {
			scrub(tmp)
			return nil, err
		}
		sink = io.MultiWriter(os.Stderr, logFile)
	}
	cmd.Stderr = sink
	cmd.Stdout = sink
	if err := cmd.Start(); err != nil {
		if logFile != nil {
			logFile.Close()
		}
		scrub(tmp)
		return nil, err
	}
	d := &daemon{cmd: cmd, tmp: tmp, exited: make(chan error, 1)}
	go func() {
		err := cmd.Wait()
		if logFile != nil {
			logFile.Close()
		}
		d.exited <- err
	}()

	deadline := time.Now().Add(15 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			d.base = "http://" + string(data)
			return d, nil
		}
		select {
		case err := <-d.exited:
			scrub(tmp)
			return nil, fmt.Errorf("daemon %s exited before binding: %v", name, err)
		default:
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			scrub(tmp)
			return nil, fmt.Errorf("daemon %s never wrote %s", name, addrFile)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func (d *daemon) kill() {
	d.cmd.Process.Kill()
	scrub(d.tmp)
}

// drain SIGTERMs the daemon and requires a clean exit.
func (d *daemon) drain() error {
	if err := d.cmd.Process.Signal(os.Interrupt); err != nil {
		return err
	}
	select {
	case err := <-d.exited:
		if err != nil {
			return fmt.Errorf("daemon exited non-zero after SIGINT: %v", err)
		}
		return nil
	case <-time.After(60 * time.Second):
		return fmt.Errorf("daemon did not exit within 60s of SIGINT")
	}
}

func (d *daemon) post(path, body string) (status int, data []byte, cache string, err error) {
	resp, err := http.Post(d.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(resp.Body)
	return resp.StatusCode, data, resp.Header.Get("X-Cache"), err
}

func (d *daemon) get(path string) (status int, data []byte, err error) {
	resp, err := http.Get(d.base + path)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

// metrics scrapes /metrics into name{labels} → value.
func (d *daemon) metrics() (map[string]float64, error) {
	status, data, err := d.get("/metrics")
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("/metrics status %d", status)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		if v, err := strconv.ParseFloat(line[i+1:], 64); err == nil {
			out[line[:i]] = v
		}
	}
	return out, nil
}
