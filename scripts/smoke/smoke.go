// Command smoke is the CI smoke test for dbpserved: it starts the real
// daemon binary, POSTs one quick run, asserts a 200 schema-v1 ledger and a
// cache hit on the second POST, then SIGTERMs the daemon and requires a
// clean (exit 0) drain.
//
// Usage: go run ./scripts/smoke /path/to/dbpserved
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"dbpsim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("smoke: OK")
}

func run(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: smoke /path/to/dbpserved")
	}
	tmp, err := os.MkdirTemp("", "dbpserved-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	addrFile := filepath.Join(tmp, "addr")

	cmd := exec.Command(args[0], "-addr", "127.0.0.1:0", "-addr-file", addrFile, "-log-json")
	cmd.Stderr = os.Stderr
	cmd.Stdout = os.Stdout
	if err := cmd.Start(); err != nil {
		return err
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	defer cmd.Process.Kill()

	// Wait for the daemon to report its bound address.
	var addr string
	deadline := time.Now().Add(15 * time.Second)
	for addr == "" {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			addr = string(data)
			break
		}
		select {
		case err := <-exited:
			return fmt.Errorf("daemon exited before binding: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon never wrote %s", addrFile)
		}
		time.Sleep(25 * time.Millisecond)
	}
	base := "http://" + addr

	if err := check(http.Get(base + "/healthz")); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	// Submit through the retrying client (backoff + Retry-After aware): the
	// smoke test doubles as the client's end-to-end exercise.
	client := &dbpsim.Client{BaseURL: base}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	warmup := uint64(1000)
	req := dbpsim.RunRequest{
		Benchmarks: []string{"mcf-like", "gcc-like"},
		Warmup:     &warmup,
		Measure:    5000,
	}
	res, err := client.Run(ctx, req)
	if err != nil {
		return fmt.Errorf("POST /v1/runs: %w", err)
	}
	var led struct {
		SchemaVersion int    `json:"schema_version"`
		Tool          string `json:"tool"`
	}
	if err := json.Unmarshal(res.Ledger, &led); err != nil {
		return fmt.Errorf("response is not JSON: %w", err)
	}
	if led.SchemaVersion < 1 || led.SchemaVersion > 2 || led.Tool != "dbpserved" {
		return fmt.Errorf("unexpected ledger header: schema %d tool %q", led.SchemaVersion, led.Tool)
	}

	res, err = client.Run(ctx, req)
	if err != nil {
		return fmt.Errorf("second POST: %w", err)
	}
	if res.Cache != "hit" {
		return fmt.Errorf("second POST: X-Cache %q (want hit)", res.Cache)
	}

	if err := check(http.Get(base + "/metrics")); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}

	// SIGTERM must drain and exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case err := <-exited:
		if err != nil {
			return fmt.Errorf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("daemon did not exit within 30s of SIGTERM")
	}
	return nil
}

func check(resp *http.Response, err error) error {
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}
