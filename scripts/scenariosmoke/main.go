// Command scenariosmoke is the CI smoke test for the phase-shifting
// scenario path: it runs every committed scenarios/*.json through the real
// dbpsim binary (asserting the run ledger parses and carries the scenario
// identity) and through a real dbpserved daemon (asserting the served
// ledger parses, the scenario content hash lands in the cache key — an
// identical request hits, a same-name-different-content request misses —
// and the daemon drains cleanly).
//
// Usage: go run ./scripts/scenariosmoke /path/to/dbpsim /path/to/dbpserved
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"dbpsim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "scenario-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("scenario-smoke: OK")
}

func run(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: scenariosmoke /path/to/dbpsim /path/to/dbpserved")
	}
	simBin, servedBin := args[0], args[1]

	files, err := filepath.Glob("scenarios/*.json")
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("no committed scenario files under scenarios/ (run from the repo root)")
	}
	sort.Strings(files)

	tmp, err := os.MkdirTemp("", "scenario-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	// Leg 1: every committed scenario through the real dbpsim binary at a
	// short budget; the ledger must parse and carry the scenario identity.
	for _, f := range files {
		sc, err := dbpsim.LoadScenario(f)
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		out := filepath.Join(tmp, sc.Name+".json")
		cmd := exec.Command(simBin, "-scenario", f, "-part", "dbp",
			"-warmup", "1000", "-measure", "5000", "-json", out)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("dbpsim -scenario %s: %w", f, err)
		}
		led, err := dbpsim.LoadLedger(out)
		if err != nil {
			return fmt.Errorf("%s: ledger does not parse: %w", f, err)
		}
		if led.Scenario != sc.Name || led.ScenarioHash != sc.Hash() {
			return fmt.Errorf("%s: ledger identity %q/%q, want %q/%q",
				f, led.Scenario, led.ScenarioHash, sc.Name, sc.Hash())
		}
		fmt.Printf("scenario-smoke: dbpsim %-16s ok (hash %.12s…)\n", sc.Name, led.ScenarioHash)
	}

	// Leg 2: the service path, against the real daemon.
	daemon, base, stop, err := startDaemon(servedBin, tmp)
	if err != nil {
		return err
	}
	defer daemon.Process.Kill()

	client := &dbpsim.Client{BaseURL: base}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	for _, f := range files {
		sc, err := dbpsim.LoadScenario(f)
		if err != nil {
			return err
		}
		doc, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		warmup := uint64(1000)
		req := dbpsim.RunRequest{Scenario: doc, Warmup: &warmup, Measure: 5000, Partition: "dbp"}

		res, err := client.Run(ctx, req)
		if err != nil {
			return fmt.Errorf("POST scenario %s: %w", sc.Name, err)
		}
		led, err := dbpsim.LoadLedgerBytes(res.Ledger)
		if err != nil {
			return fmt.Errorf("%s: served ledger does not parse: %w", sc.Name, err)
		}
		if led.ScenarioHash != sc.Hash() {
			return fmt.Errorf("%s: served scenario_hash %q, want %q", sc.Name, led.ScenarioHash, sc.Hash())
		}

		// The cache key must include the scenario content hash: the same
		// document hits, a same-name-different-seed document must not.
		res, err = client.Run(ctx, req)
		if err != nil {
			return fmt.Errorf("second POST %s: %w", sc.Name, err)
		}
		if res.Cache != "hit" {
			return fmt.Errorf("%s: identical scenario request: X-Cache %q (want hit)", sc.Name, res.Cache)
		}
		mutated, err := bumpSeed(doc)
		if err != nil {
			return err
		}
		res, err = client.Run(ctx, dbpsim.RunRequest{Scenario: mutated, Warmup: &warmup, Measure: 5000, Partition: "dbp"})
		if err != nil {
			return fmt.Errorf("mutated POST %s: %w", sc.Name, err)
		}
		if res.Cache == "hit" {
			return fmt.Errorf("%s: different scenario content hit the cache under the same name", sc.Name)
		}
		fmt.Printf("scenario-smoke: served %-16s ok (hit on repeat, miss on content change)\n", sc.Name)
	}

	return stop()
}

// bumpSeed returns the scenario document with its seed changed — same
// name, different content, therefore a different content hash.
func bumpSeed(doc []byte) ([]byte, error) {
	sc, err := dbpsim.DecodeScenario(doc)
	if err != nil {
		return nil, err
	}
	sc.Seed++
	return json.Marshal(sc)
}

func startDaemon(bin, tmp string) (cmd *exec.Cmd, base string, stop func() error, err error) {
	addrFile := filepath.Join(tmp, "addr")
	cmd = exec.Command(bin, "-addr", "127.0.0.1:0", "-addr-file", addrFile, "-log-json")
	var logs bytes.Buffer
	cmd.Stderr = &logs
	cmd.Stdout = &logs
	if err := cmd.Start(); err != nil {
		return nil, "", nil, err
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()

	deadline := time.Now().Add(15 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			base = "http://" + string(data)
			break
		}
		select {
		case err := <-exited:
			return nil, "", nil, fmt.Errorf("daemon exited before binding: %v\n%s", err, logs.String())
		default:
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			return nil, "", nil, fmt.Errorf("daemon never wrote %s\n%s", addrFile, logs.String())
		}
		time.Sleep(25 * time.Millisecond)
	}

	stop = func() error {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
		select {
		case err := <-exited:
			if err != nil {
				return fmt.Errorf("daemon exited non-zero after SIGTERM: %v\n%s", err, logs.String())
			}
			return nil
		case <-time.After(30 * time.Second):
			return fmt.Errorf("daemon did not exit within 30s of SIGTERM")
		}
	}
	return cmd, base, stop, nil
}
